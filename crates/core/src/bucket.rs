//! The obfuscated bucket — the wire artifact exchanged with the optimizer
//! party (paper Figure 1's "Obfuscated Bucket").
//!
//! [`ObfuscatedModel`] is everything the optimizer (and hence an
//! interceptor) sees: for each of the `n` protected subgraphs, `k + 1`
//! anonymized candidate subgraphs in shuffled order. Which member is real
//! is recorded only in [`ObfuscationSecrets`], which never leaves the model
//! owner.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use proteus_graph::wire::{decode_graph, decode_params, encode_graph, encode_params, WireError};
use proteus_graph::{Graph, TensorMap};
use proteus_partition::PartitionPlan;
use serde::{Deserialize, Serialize};

/// One candidate subgraph: structure plus (optional) parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketMember {
    pub graph: Graph,
    pub params: TensorMap,
}

/// The `k + 1` candidates hiding one protected subgraph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Bucket {
    pub members: Vec<BucketMember>,
}

/// Everything the optimizer party receives.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObfuscatedModel {
    pub buckets: Vec<Bucket>,
}

impl ObfuscatedModel {
    /// Total number of subgraphs across all buckets.
    pub fn total_subgraphs(&self) -> usize {
        self.buckets.iter().map(|b| b.members.len()).sum()
    }

    /// `n` — the number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Serializes the model to its byte wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.buckets.len() as u32);
        for bucket in &self.buckets {
            buf.put_u32_le(bucket.members.len() as u32);
            for member in &bucket.members {
                let g = encode_graph(&member.graph);
                let p = encode_params(&member.graph, &member.params);
                buf.put_u32_le(g.len() as u32);
                buf.put_slice(&g);
                buf.put_u32_le(p.len() as u32);
                buf.put_slice(&p);
            }
        }
        buf.freeze()
    }

    /// Deserializes a model from [`ObfuscatedModel::to_bytes`] output.
    ///
    /// # Errors
    /// Returns [`WireError`] on malformed input.
    pub fn from_bytes(mut data: Bytes) -> Result<ObfuscatedModel, WireError> {
        let need = |data: &Bytes, n: usize| -> Result<(), WireError> {
            if data.remaining() < n {
                Err(WireError("truncated bucket".into()))
            } else {
                Ok(())
            }
        };
        need(&data, 4)?;
        let nb = data.get_u32_le() as usize;
        if nb > 1_000_000 {
            return Err(WireError(format!("implausible bucket count {nb}")));
        }
        let mut buckets = Vec::with_capacity(nb);
        for _ in 0..nb {
            need(&data, 4)?;
            let nm = data.get_u32_le() as usize;
            if nm > 1_000_000 {
                return Err(WireError(format!("implausible member count {nm}")));
            }
            let mut members = Vec::with_capacity(nm);
            for _ in 0..nm {
                need(&data, 4)?;
                let glen = data.get_u32_le() as usize;
                need(&data, glen)?;
                let mut gbytes = data.split_to(glen);
                let graph = decode_graph(&mut gbytes)?;
                need(&data, 4)?;
                let plen = data.get_u32_le() as usize;
                need(&data, plen)?;
                let mut pbytes = data.split_to(plen);
                let params = decode_params(&mut pbytes)?;
                members.push(BucketMember { graph, params });
            }
            buckets.push(Bucket { members });
        }
        Ok(ObfuscatedModel { buckets })
    }
}

/// The model owner's private reassembly material.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObfuscationSecrets {
    /// The partition plan (boundary wiring, original interfaces).
    pub plan: PartitionPlan,
    /// For bucket `i`, the index of the real subgraph within
    /// `buckets[i].members`.
    pub real_positions: Vec<usize>,
}

/// Strips identifying names from a graph: the graph gets a neutral name and
/// every node is renamed to `op_index`. The real subgraph and the sentinels
/// must be indistinguishable by labels.
pub fn anonymize(graph: &Graph, tag: usize) -> Graph {
    let (mut g, _) = graph.compact();
    g.set_name(format!("subgraph_{tag}"));
    let ids = g.node_ids();
    for (i, id) in ids.into_iter().enumerate() {
        let base = {
            let node = g.node(id).expect("live");
            node.op.opcode()
        };
        if let Some(node) = g.node_mut(id) {
            node.name = format!("{}_{}", format!("{base:?}").to_lowercase(), i);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};

    fn member(seed: u64) -> BucketMember {
        let mut g = Graph::new(format!("m{seed}"));
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        g.set_outputs([r]);
        let params = TensorMap::init_random(&g, seed);
        BucketMember { graph: g, params }
    }

    #[test]
    fn wire_roundtrip() {
        let model = ObfuscatedModel {
            buckets: vec![
                Bucket {
                    members: vec![member(1), member(2)],
                },
                Bucket {
                    members: vec![member(3), member(4), member(5)],
                },
            ],
        };
        let bytes = model.to_bytes();
        let back = ObfuscatedModel::from_bytes(bytes).unwrap();
        assert_eq!(back.num_buckets(), 2);
        assert_eq!(back.total_subgraphs(), 5);
        for (a, b) in model.buckets.iter().zip(&back.buckets) {
            for (ma, mb) in a.members.iter().zip(&b.members) {
                assert_eq!(ma.graph.len(), mb.graph.len());
                assert_eq!(ma.params.len(), mb.params.len());
            }
        }
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let model = ObfuscatedModel {
            buckets: vec![Bucket {
                members: vec![member(1)],
            }],
        };
        let bytes = model.to_bytes();
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(ObfuscatedModel::from_bytes(truncated).is_err());
    }

    #[test]
    fn anonymize_strips_names() {
        let m = member(9);
        let anon = anonymize(&m.graph, 3);
        assert_eq!(anon.name(), "subgraph_3");
        for (_, node) in anon.iter() {
            assert!(!node.name.contains("m9"), "leaked name {}", node.name);
        }
        assert_eq!(anon.len(), m.graph.len());
    }
}
