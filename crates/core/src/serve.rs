//! Multi-tenant serving runtime: many concurrent obfuscation requests
//! multiplexed over one shared optimizer worker pool.
//!
//! PR 3's sessions made a single request streamable; at service scale the
//! optimizer party faces *many* owners at once, and spawning a thread
//! fan-out per call (the old [`crate::optimize_model`] behavior) lets any
//! one request grab every core while others queue behind it. The
//! [`ServeRuntime`] inverts that: a fixed pool of workers is created once,
//! every request's [`SealedBucket`] frames are split into per-member tasks
//! on a work-stealing scheduler ([`StealQueues`]), and workers interleave
//! members of *different* requests — so a request with one small bucket is
//! not stuck behind a tenant streaming a hundred large ones.
//!
//! Flow control is per request: a [`RequestHandle`] admits at most
//! [`ServeConfig::window`] frames in flight (submitted but not yet
//! optimized); submitting past the window blocks the producer, which is
//! exactly the backpressure a bounded transport would exert. Completed
//! frames are reassembled member-by-member and surface on the handle in
//! completion order — [`crate::DeobfuscationSession`] accepts them in any
//! order, so nothing downstream cares that bucket 3 finished before
//! bucket 0.
//!
//! On the wire, concurrent requests share one byte stream via the v2
//! multiplexed frame ([`proteus_graph::wire::encode_frame_v2`]): the
//! header carries a `request_id`, [`RequestHandle::submit_bytes`] rejects
//! frames whose id does not match the handle (cross-request injection),
//! and v1 single-request frames are still decoded for backward
//! compatibility.
//!
//! Two serving-only accelerations ride on top. The shared
//! [`OptimizedCache`] replays optimizer outputs for bucket members whose
//! exact wire bytes were optimized before — sentinels are anonymized
//! content-addressed ([`crate::bucket::anonymize_content`]), so the same
//! sentinel repeating across buckets, requests, or tenants costs the pool
//! exactly one optimization. The [`SentinelPool`] warms a trained
//! instance's [`crate::SentinelInventory`] in a background thread so
//! sessions draw pre-built sentinels instead of generating them inline on
//! the request path. Both are pure memoization: served bytes stay
//! bit-identical to the cold path, and the per-request
//! [`RequestHandle::phases`] breakdown measures the win instead of
//! asserting it.
//!
//! # Crash containment
//!
//! The runtime is crash-contained. Every pool task runs under
//! `catch_unwind`: a panicking optimizer task fails *its own request's*
//! lane with a typed [`ProteusError::WorkerCrashed`] — in-flight frames
//! of that request are abandoned (a frame never surfaces with missing
//! members) while every other lane keeps flowing. A supervisor thread
//! respawns worker threads that exit for any reason other than shutdown,
//! so pool capacity survives even aborting faults. Lock poisoning is
//! recovered structurally where the data cannot be inconsistent (queues,
//! park/registry locks) and converted to typed lane failures where it can
//! (a request's reassembly state). All of it is drivable by the
//! deterministic [`crate::config::FaultPlan`] in [`ServeConfig::faults`]
//! — the chaos battery (`tests/fleet_chaos.rs`) replays exact failure
//! schedules from a seed.
//!
//! # Example
//!
//! ```
//! use proteus::serve::{ServeRuntime};
//! use proteus::{PartitionSpec, Proteus, ProteusConfig, ServeConfig};
//! use proteus_graph::TensorMap;
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_opt::{Optimizer, Profile};
//!
//! let proteus = Proteus::builder()
//!     .config(ProteusConfig {
//!         k: 2,
//!         partitions: PartitionSpec::Count(2),
//!         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!         topology_pool: 10,
//!         ..Default::default()
//!     })
//!     .corpus_model(proteus_models::build(proteus_models::ModelKind::ResNet))
//!     .train_shared()?;
//!
//! // the optimizer party: one pool shared by every request
//! let runtime = ServeRuntime::new(
//!     Optimizer::new(Profile::OrtLike),
//!     ServeConfig { workers: 2, window: 2, ..Default::default() },
//! )?;
//!
//! // each request streams through the shared pool under its own id
//! let secret = proteus_models::build(proteus_models::ModelKind::AlexNet);
//! let (optimized, _params) = runtime.serve_request(&proteus, &secret, &TensorMap::new(), 11)?;
//! assert!(optimized.validate().is_ok());
//! assert!(runtime.stats().tasks_executed > 0);
//! # Ok::<(), proteus::ProteusError>(())
//! ```

// The serving hot path must never panic on behalf of a request: every
// `unwrap`/`expect` here is either converted to a typed error or justified
// as a true invariant at the use site. CI runs clippy with `-D warnings`,
// so a new unjustified panic path fails the build.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::bucket::{Bucket, BucketMember, SealedBucket};
use crate::config::{FaultPlan, ServeConfig};
use crate::error::ProteusError;
use crate::phase::PhaseBreakdown;
use crate::pipeline::Proteus;
use crate::session::DeobfuscationSession;
use bytes::Bytes;
use proteus_graph::wire::{encode_graph, encode_params, fnv1a64};
use proteus_graph::{Graph, TensorMap};
use proteus_opt::{Optimizer, Profile};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poison by taking the guard anyway.
///
/// Only used for locks whose protected data stays structurally valid
/// across a panic: the steal deques (single push/pop operations), the
/// park and supervisor rendezvous locks (`()` payloads), the handle
/// registry (a vector of weak pointers), and the worker slot table. A
/// panic on another thread cannot leave any of these half-mutated in a
/// way later readers would misinterpret, so propagating the poison would
/// turn one contained crash into a pool-wide outage for no safety gain.
/// Request-lane locks are NOT handled here — their reassembly state *can*
/// be mid-mutation, so [`RequestState::lane`] heals them and surfaces a
/// typed error instead.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// A work-stealing task scheduler over plain std primitives: one deque
/// per worker, round-robin placement, and steal-from-the-back when a
/// worker's own deque runs dry.
///
/// Used by the [`ServeRuntime`] pool (persistent workers) and by the
/// batch fan-out in [`crate::optimize_model_with_threads`] (scoped
/// workers) — both face the same imbalance: bucket members vary wildly in
/// size, so fixed chunking leaves workers idle behind one loaded with the
/// big graphs, and a single shared queue serializes every pop on one
/// lock.
///
/// ```
/// use proteus::serve::StealQueues;
///
/// let q: StealQueues<usize> = StealQueues::new(2);
/// for task in 0..4 {
///     q.push(task);
/// }
/// // worker 1 drains its own deque, then steals worker 0's
/// let drained: Vec<usize> = std::iter::from_fn(|| q.pop(1)).collect();
/// assert_eq!(drained.len(), 4);
/// ```
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    next: AtomicUsize,
}

impl<T> StealQueues<T> {
    /// Creates one deque per worker (at least one).
    pub fn new(workers: usize) -> StealQueues<T> {
        StealQueues {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// How many worker deques the scheduler has.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Places one task, round-robin across worker deques. Poisoned deque
    /// locks are recovered: a deque is always a valid deque even when the
    /// poisoning panic happened elsewhere in the critical section.
    pub fn push(&self, item: T) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        relock(&self.queues[w]).push_back(item);
    }

    /// Pops the next task for `worker`: the front of its own deque, or —
    /// when that is empty — a steal from the back of another worker's.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        let own = worker % n;
        if let Some(item) = relock(&self.queues[own]).pop_front() {
            return Some(item);
        }
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(item) = relock(&self.queues[victim]).pop_back() {
                return Some(item);
            }
        }
        None
    }
}

/// One cached optimizer output, retained with its full key so a
/// fingerprint collision can never substitute the wrong graph.
#[derive(Debug)]
struct CacheEntry {
    key: Bytes,
    graph: Graph,
    params: TensorMap,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Entries bucketed by the 64-bit fingerprint of their full key.
    /// Within a bucket, entries sit in insertion order; FIFO eviction
    /// pops the front, so the deque keeps eviction O(1) where a `Vec`
    /// would shift the whole colliding bucket on every eviction.
    buckets: HashMap<u64, VecDeque<CacheEntry>>,
    /// Insertion order of fingerprints, for FIFO eviction.
    order: VecDeque<u64>,
}

/// A shared cache of optimizer outputs, keyed by the member's exact wire
/// bytes plus the optimizer profile.
///
/// Sentinel members are anonymized content-addressed
/// ([`crate::bucket::anonymize_content`]): the same sentinel drawn into
/// different buckets, requests, or tenants serializes to identical bytes,
/// so its optimized form is computed once by the worker pool and replayed
/// on every later appearance. Real subgraphs are partitioned under a
/// per-request seed and essentially never repeat — they miss and take the
/// pool as before, which is exactly right: the cache must never make the
/// protected pieces distinguishable by *skipping* them, and it does not,
/// because hits and misses produce byte-identical frames.
///
/// The u64 fingerprint only buckets; every hit compares the full key
/// bytes, so a collision degrades to a miss, never to a wrong answer.
/// Eviction is FIFO at [`ServeConfig::cache_capacity`] entries; capacity
/// `0` disables the cache entirely (every member goes to the pool).
///
/// The cache self-heals from lock poisoning: it is pure memoization, so
/// when a panic poisons the lock mid-mutation the recovery path drops
/// every resident entry, clears the poison, and keeps serving — losing
/// cached latency, never correctness. [`OptimizedCache::poison_heals`]
/// counts how often that happened.
#[derive(Debug)]
pub struct OptimizedCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Times a poisoned lock was healed by dropping all entries.
    heals: AtomicUsize,
    /// 1-based insert ordinal, driving the cache-poisoning fault.
    inserts: AtomicU64,
    faults: FaultPlan,
}

impl OptimizedCache {
    /// Creates a cache holding at most `capacity` optimized members;
    /// `0` disables caching (lookups miss, inserts drop).
    pub fn new(capacity: usize) -> OptimizedCache {
        OptimizedCache::with_faults(capacity, FaultPlan::default())
    }

    /// [`OptimizedCache::new`] with a fault plan armed — used by chaos
    /// tests to poison the cache lock on a chosen insert.
    pub fn with_faults(capacity: usize, faults: FaultPlan) -> OptimizedCache {
        OptimizedCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            heals: AtomicUsize::new(0),
            inserts: AtomicU64::new(0),
            faults,
        }
    }

    /// Locks the cache, healing a poisoned lock by dropping every entry.
    /// A panic mid-`insert` can leave `buckets` and `order` disagreeing,
    /// so the only state the recovered guard may expose is the empty one;
    /// correctness is unaffected because every entry is recomputable.
    fn guard(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.buckets.clear();
                guard.order.clear();
                self.inner.clear_poison();
                self.heals.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Whether the cache stores anything at all (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.guard().order.len()
    }

    /// Times a poisoned cache lock was healed (entries dropped, poison
    /// cleared). Nonzero only after a worker panicked while holding the
    /// cache lock — injected or real.
    pub fn poison_heals(&self) -> usize {
        self.heals.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that returned a cached member.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing and sent the member to the pool.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cache key of one unoptimized bucket member: a profile tag byte
    /// (outputs differ per optimizer profile) followed by the member's
    /// canonical wire encoding. [`encode_graph`] compacts before writing,
    /// so structurally identical graphs key identically regardless of
    /// their in-memory node numbering.
    pub fn key_for(profile: Profile, graph: &Graph, params: &TensorMap) -> Bytes {
        let tag: u8 = match profile {
            Profile::OrtLike => 0,
            Profile::HidetLike => 1,
            Profile::TvmLike => 2,
        };
        let mut buf = Vec::new();
        buf.push(tag);
        buf.extend_from_slice(&encode_graph(graph));
        buf.extend_from_slice(&encode_params(graph, params));
        Bytes::from(buf)
    }

    /// Returns the optimized member cached under `key`, counting a hit or
    /// miss. Always a miss when disabled.
    pub fn lookup(&self, key: &Bytes) -> Option<BucketMember> {
        if !self.is_enabled() {
            return None;
        }
        let fp = fnv1a64(key);
        let found = {
            let inner = self.guard();
            inner
                .buckets
                .get(&fp)
                .and_then(|bucket| bucket.iter().find(|e| e.key == *key))
                .map(|e| BucketMember {
                    graph: e.graph.clone(),
                    params: e.params.clone(),
                })
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Publishes one optimized member under its key, evicting the oldest
    /// entry when full. Returns whether the entry was stored (`false`
    /// when disabled or when a racing worker already published this key —
    /// the first result stays, and determinism makes both identical).
    pub fn insert(&self, key: Bytes, graph: Graph, params: TensorMap) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let ordinal = self.inserts.fetch_add(1, Ordering::Relaxed) + 1;
        if self.faults.poison_cache_fires(ordinal) {
            // deliberately panic while holding the cache lock, contained:
            // the lock is now poisoned exactly as a crashing worker would
            // leave it, and the insert below must go through the heal path
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _held = self.inner.lock();
                panic!("fault injection: cache lock poisoned at insert {ordinal}");
            }));
        }
        let fp = fnv1a64(&key);
        let mut inner = self.guard();
        if inner
            .buckets
            .get(&fp)
            .is_some_and(|bucket| bucket.iter().any(|e| e.key == key))
        {
            return false;
        }
        if inner.order.len() >= self.capacity {
            if let Some(old_fp) = inner.order.pop_front() {
                if let Some(bucket) = inner.buckets.get_mut(&old_fp) {
                    // entries within a fingerprint bucket are in insertion
                    // order, so popping the front evicts exactly the entry
                    // `order` named — same FIFO order as the old
                    // `Vec::remove(0)`, without the O(n) shift
                    bucket.pop_front();
                    if bucket.is_empty() {
                        inner.buckets.remove(&old_fp);
                    }
                }
            }
        }
        inner
            .buckets
            .entry(fp)
            .or_default()
            .push_back(CacheEntry { key, graph, params });
        inner.order.push_back(fp);
        true
    }
}

/// A background warmer that fills a trained [`Proteus`] instance's
/// sentinel inventory ahead of traffic.
///
/// Sentinels are pure functions of the trained state and a
/// [`crate::SentinelKey`] ([`crate::SentinelFactory::build_sentinel`]),
/// so they can be built before any request arrives: the warmer walks the
/// factory's full key space on its own thread, memoizing each result into
/// the shared [`crate::SentinelInventory`]. Sessions that run while the
/// warmer is still going simply build-and-store the keys it has not
/// reached yet — the inventory is idempotent, so the two producers never
/// disagree.
///
/// Dropping the pool stops the warmer at the next key boundary and joins
/// the thread; [`SentinelPool::join`] waits for a full sweep and reports
/// how many keys resolved to a sentinel.
#[derive(Debug)]
pub struct SentinelPool {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<usize>>,
}

impl SentinelPool {
    /// Spawns the warmer over a shared trained instance. If the OS
    /// refuses the thread, the pool is inert — sessions fall back to
    /// building sentinels lazily, which is always correct.
    pub fn spawn(proteus: Arc<Proteus>) -> SentinelPool {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("proteus-sentinel-warmer".into())
            .spawn(move || {
                let factory = proteus.factory();
                let inventory = proteus.inventory();
                let mut built = 0usize;
                for key in factory.key_space() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if factory.sentinel(key, Some(inventory)).is_some() {
                        built += 1;
                    }
                }
                built
            })
            .ok();
        SentinelPool { stop, handle }
    }

    /// Asks the warmer to stop after the key it is currently building.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the sweep to finish (or honor [`SentinelPool::stop`])
    /// and returns how many keys resolved to a sentinel. A warmer that
    /// panicked (or never spawned) reports zero — the inventory is warmed
    /// lazily by sessions either way.
    pub fn join(mut self) -> usize {
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for SentinelPool {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One unit of pool work: optimize a single bucket member of one
/// request's frame.
struct Task {
    req: Arc<RequestState>,
    bucket_index: u32,
    member: usize,
    graph: Graph,
    params: TensorMap,
    /// When the optimized cache is enabled, the member's key — the worker
    /// publishes its result there for later requests.
    cache_key: Option<Bytes>,
}

/// A frame being reassembled from its optimized members.
struct PartialBucket {
    num_buckets: u32,
    remaining: usize,
    slots: Vec<Option<BucketMember>>,
}

/// Request-side state: window accounting, partial reassembly, completed
/// frames.
struct RequestInner {
    /// Frames submitted but not yet fully optimized.
    inflight: usize,
    /// Bucket indices ever submitted on this handle (duplicate defense).
    seen: HashSet<u32>,
    /// Frames with members still being optimized.
    partial: HashMap<u32, PartialBucket>,
    /// Fully optimized frames, in completion order.
    done: VecDeque<SealedBucket>,
    /// Set when the runtime shuts down — receivers stop blocking.
    closed: bool,
    /// Set (once, first failure wins) when the lane fails: a worker
    /// crashed on one of this request's tasks, the replica was killed, or
    /// the lane's own lock was poisoned. Submit/recv surface it as a
    /// typed error after any already-completed frames drain.
    failed: Option<ProteusError>,
}

struct RequestState {
    request_id: u64,
    window: usize,
    inner: Mutex<RequestInner>,
    cv: Condvar,
    /// Set when every [`RequestHandle`] clone for this lane is dropped:
    /// pending pool tasks detach (skip the optimizer, drop their result)
    /// instead of filling reassembly state nobody will read.
    cancelled: AtomicBool,
    /// Worker-pool optimizer nanoseconds spent on this request's members.
    optimize_ns: AtomicU64,
    /// Frame encode/decode nanoseconds on the byte-stream entry points.
    wire_ns: AtomicU64,
}

impl RequestState {
    /// Locks the lane, healing a poisoned lock into a typed failure.
    ///
    /// A poisoned lane lock means bookkeeping died mid-update, so the
    /// reassembly state (`partial`, `inflight`) may be inconsistent —
    /// the heal abandons it and marks the lane failed (first failure
    /// wins), which is exactly the contract a crashed worker gets. Frames
    /// already in `done` are complete and stay deliverable.
    fn lane(&self) -> MutexGuard<'_, RequestInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                if guard.failed.is_none() {
                    guard.failed = Some(ProteusError::WorkerCrashed {
                        request_id: self.request_id,
                        detail: "lane bookkeeping interrupted by a panic (lock poisoned); \
                                 in-flight frames abandoned"
                            .into(),
                    });
                }
                guard.partial.clear();
                guard.inflight = 0;
                self.inner.clear_poison();
                self.cv.notify_all();
                guard
            }
        }
    }
}

/// Drop hook shared by every clone of a [`RequestHandle`]: when the last
/// clone goes away, mark the lane cancelled so queued tasks detach and
/// abandoned reassembly state is freed — a dropped handle must never
/// strand worker results or block runtime shutdown.
struct CancelGuard {
    state: Arc<RequestState>,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
        let mut lane = self.state.lane();
        lane.partial.clear();
        lane.inflight = 0;
        drop(lane);
        self.state.cv.notify_all();
    }
}

/// Counters of a running [`ServeRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Member-optimization tasks executed since construction. Cache hits
    /// never become tasks, so this counts optimizer invocations.
    pub tasks_executed: usize,
    /// High-water mark of tasks queued and not yet claimed by a worker.
    pub max_queue_depth: usize,
    /// Bucket members served straight from the [`OptimizedCache`].
    pub cache_hits: usize,
    /// Members that missed the cache and went to the worker pool.
    pub cache_misses: usize,
    /// Entries currently resident in the [`OptimizedCache`].
    pub cache_entries: usize,
    /// Tasks whose execution panicked; each failed its request's lane
    /// with [`ProteusError::WorkerCrashed`] and was contained there.
    pub tasks_crashed: usize,
    /// Tasks dropped without running because their request's handle was
    /// dropped (or lane already failed) — cancelled work, not lost work.
    pub tasks_detached: usize,
    /// Worker threads the supervisor respawned after an abnormal exit.
    pub workers_respawned: usize,
    /// Times a poisoned [`OptimizedCache`] lock self-healed.
    pub cache_poison_heals: usize,
    /// Whether the runtime was killed (the replica-loss fault) rather
    /// than gracefully shut down.
    pub killed: bool,
}

struct PoolShared {
    optimizer: Optimizer,
    cache: OptimizedCache,
    queues: StealQueues<Task>,
    /// Tasks pushed and not yet claimed; the park/wake signal.
    pending: AtomicUsize,
    park: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Set by the kill fault: abrupt replica loss. Workers exit without
    /// draining and every lane fails with
    /// [`ProteusError::ReplicaUnavailable`]. Implies `shutdown`.
    killed: AtomicBool,
    tasks_executed: AtomicUsize,
    max_queue_depth: AtomicUsize,
    tasks_crashed: AtomicUsize,
    tasks_detached: AtomicUsize,
    workers_respawned: AtomicUsize,
    /// 1-based ordinal of pool task execution, driving fault draws.
    task_ordinal: AtomicU64,
    faults: FaultPlan,
    /// This runtime's replica identity in fleet error reports.
    label: usize,
    /// Every handle ever created, so shutdown can wake blocked clients.
    requests: Mutex<Vec<Weak<RequestState>>>,
    /// Worker thread handles by slot, shared with the supervisor so it
    /// can join and replace a dead worker in place.
    slots: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Indices of workers that have exited, pushed by the worker's own
    /// exit trailer; the supervisor's work queue.
    exited: Mutex<Vec<usize>>,
    /// Supervisor rendezvous: notified on worker exit and on shutdown.
    sup_park: Mutex<()>,
    sup_cv: Condvar,
}

impl PoolShared {
    fn push_task(&self, task: Task) {
        self.queues.push(task);
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let _guard = relock(&self.park);
        self.cv.notify_all();
    }

    /// Fails a request's lane with `err` (first failure wins) and
    /// abandons its in-flight reassembly — a frame must never surface
    /// with missing members.
    fn fail_request(&self, req: &RequestState, err: ProteusError) {
        let mut lane = req.lane();
        if lane.failed.is_none() {
            lane.failed = Some(err);
        }
        lane.partial.clear();
        lane.inflight = 0;
        drop(lane);
        req.cv.notify_all();
    }

    /// Runs one pool task with crash containment. Returns `false` when
    /// the worker running it should retire (runtime killed, or an
    /// aborting fault fired) — the supervisor respawns retired workers.
    fn run_task(&self, task: Task) -> bool {
        let ordinal = self.task_ordinal.fetch_add(1, Ordering::SeqCst) + 1;
        let faults = self.faults;
        if faults.is_active() && faults.kill_fires(ordinal) {
            self.kill(format!("fault injection: replica killed at task {ordinal}"));
            return false;
        }
        if self.killed.load(Ordering::SeqCst) {
            return false;
        }
        if task.req.cancelled.load(Ordering::SeqCst) || {
            // skip-before-running: the lane already failed, so this
            // task's output would be dropped anyway
            task.req.lane().failed.is_some()
        } {
            self.tasks_detached.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let req = Arc::clone(&task.req);
        // the whole task — fault draws, optimizer, completion bookkeeping
        // — runs under catch_unwind, so any panic (injected or a real
        // bug) fails only this request's lane, not the pool. The closure
        // only touches task-local data and lane locks that heal poison,
        // so continuing after the unwind is sound (AssertUnwindSafe).
        let crashed = catch_unwind(AssertUnwindSafe(|| self.execute_task(task, ordinal))).err();
        if let Some(payload) = crashed {
            self.tasks_crashed.fetch_add(1, Ordering::Relaxed);
            self.fail_request(
                &req,
                ProteusError::WorkerCrashed {
                    request_id: req.request_id,
                    detail: panic_message(payload),
                },
            );
            return !faults.abort_worker;
        }
        true
    }

    /// The fallible body of one task: optimize the member (with stall and
    /// panic faults applied) and land it in the request's reassembly
    /// state. Runs inside `run_task`'s catch_unwind.
    fn execute_task(&self, task: Task, ordinal: u64) {
        let faults = self.faults;
        if faults.is_active() && faults.stall_fires(ordinal) {
            std::thread::sleep(Duration::from_millis(u64::from(faults.stall_ms)));
        }
        let started = Instant::now();
        if faults.is_active() && faults.panic_fires(ordinal) {
            panic!("fault injection: optimizer task {ordinal} panicked mid-request");
        }
        let (graph, params, _) = self.optimizer.optimize(&task.graph, &task.params);
        task.req
            .optimize_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(key) = task.cache_key {
            self.cache.insert(key, graph.clone(), params.clone());
        }
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        let mut lane = task.req.lane();
        if lane.failed.is_some() || task.req.cancelled.load(Ordering::SeqCst) {
            // the lane failed or was cancelled while we optimized: the
            // reassembly state is gone, drop the result on the floor
            return;
        }
        let Some(partial) = lane.partial.get_mut(&task.bucket_index) else {
            // same race, observed through the cleared map instead of the
            // flags — a detached task, not an invariant violation
            self.tasks_detached.fetch_add(1, Ordering::Relaxed);
            return;
        };
        partial.slots[task.member] = Some(BucketMember { graph, params });
        partial.remaining -= 1;
        if partial.remaining == 0 {
            let Some(finished) = lane.partial.remove(&task.bucket_index) else {
                // just held under the same lock guard
                unreachable!("partial bucket vanished between get_mut and remove");
            };
            let mut members: Vec<BucketMember> = Vec::with_capacity(finished.slots.len());
            for (i, slot) in finished.slots.into_iter().enumerate() {
                match slot {
                    Some(m) => members.push(m),
                    // remaining hit zero, so every slot was filled by a
                    // cache prefill or a landed task; an empty slot here
                    // is accounting corruption and the frame must not be
                    // emitted half-built — fail the lane instead
                    None => {
                        drop(lane);
                        self.fail_request(
                            &task.req,
                            ProteusError::WorkerCrashed {
                                request_id: task.req.request_id,
                                detail: format!(
                                    "bucket {} member {i} missing at completion; \
                                     frame withheld",
                                    task.bucket_index
                                ),
                            },
                        );
                        return;
                    }
                }
            }
            lane.done.push_back(SealedBucket {
                bucket_index: task.bucket_index,
                num_buckets: finished.num_buckets,
                bucket: Bucket { members },
            });
            lane.inflight = lane.inflight.saturating_sub(1);
            task.req.cv.notify_all();
        }
    }

    /// Abrupt replica loss: stop the pool without draining and fail every
    /// open lane with [`ProteusError::ReplicaUnavailable`]. Idempotent.
    fn kill(&self, detail: String) {
        if self.killed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let mut requests = relock(&self.requests);
        for weak in requests.drain(..) {
            if let Some(req) = weak.upgrade() {
                let mut lane = req.lane();
                if lane.failed.is_none() {
                    lane.failed = Some(ProteusError::ReplicaUnavailable {
                        replica: self.label,
                        detail: detail.clone(),
                    });
                }
                lane.closed = true;
                lane.partial.clear();
                lane.inflight = 0;
                drop(lane);
                req.cv.notify_all();
            }
        }
        drop(requests);
        {
            let _guard = relock(&self.park);
            self.cv.notify_all();
        }
        {
            let _guard = relock(&self.sup_park);
            self.sup_cv.notify_all();
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.killed.load(Ordering::SeqCst) {
                return;
            }
            if let Some(task) = self.queues.pop(worker) {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                if !self.run_task(task) {
                    return;
                }
                continue;
            }
            let mut guard = relock(&self.park);
            while self.pending.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::SeqCst)
            {
                guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
            }
            if self.pending.load(Ordering::SeqCst) == 0 && self.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }
}

/// Spawns one pool worker into slot `w`. The worker's exit trailer
/// reports its index to the supervisor queue no matter *why* it exited —
/// graceful shutdown, an aborting fault, or a panic escaping the
/// per-task containment — so a worker death can never go unnoticed.
fn spawn_worker(shared: &Arc<PoolShared>, w: usize) -> Result<JoinHandle<()>, ProteusError> {
    let pool = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("proteus-serve-{w}"))
        .spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| pool.worker_loop(w)));
            relock(&pool.exited).push(w);
            let _guard = relock(&pool.sup_park);
            pool.sup_cv.notify_all();
        })
        .map_err(|e| ProteusError::ReplicaUnavailable {
            replica: shared.label,
            detail: format!("failed to spawn serve worker {w}: {e}"),
        })
}

/// The supervisor: joins workers that exited and respawns them in place,
/// keeping pool capacity constant across worker deaths. Exits (without
/// respawning) once shutdown is flagged.
fn supervisor_loop(shared: &Arc<PoolShared>) {
    loop {
        let next_exit = {
            let mut guard = relock(&shared.sup_park);
            loop {
                if let Some(w) = relock(&shared.exited).pop() {
                    break Some(w);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                guard = shared
                    .sup_cv
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(w) = next_exit else { return };
        if shared.shutdown.load(Ordering::SeqCst) {
            // workers exiting because the pool is going down; leave the
            // handles for Drop to join
            return;
        }
        // join the dead thread (it pushed its index in its final
        // statements, so this blocks at most momentarily), then refill
        // the slot
        let old = relock(&shared.slots)[w].take();
        if let Some(handle) = old {
            let _ = handle.join();
        }
        if let Ok(handle) = spawn_worker(shared, w) {
            relock(&shared.slots)[w] = Some(handle);
            shared.workers_respawned.fetch_add(1, Ordering::SeqCst);
        }
        // a failed respawn degrades capacity but keeps the pool alive;
        // the remaining workers still drain every queue
    }
}

/// The optimizer party as a long-lived service: a fixed worker pool that
/// interleaves sealed-bucket frames from many concurrent requests.
///
/// Construct once (per process, per optimizer profile), then open one
/// [`RequestHandle`] per obfuscation request with [`ServeRuntime::handle`]
/// — or drive a whole owner-side request through
/// [`ServeRuntime::serve_request`]. Dropping the runtime drains every
/// queued task, stops the workers, and unblocks any waiting client with a
/// typed error.
///
/// See the [module docs](crate::serve) for the scheduling and
/// backpressure model, and the README's "Serving architecture" section
/// for the deployment picture.
#[derive(Debug)]
pub struct ServeRuntime {
    shared: Arc<PoolShared>,
    config: ServeConfig,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("workers", &self.queues.workers())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServeRuntime {
    /// Starts the worker pool and its supervisor.
    ///
    /// # Errors
    /// [`ProteusError::Config`] when `config` is degenerate
    /// ([`ServeConfig::validate`]); [`ProteusError::ReplicaUnavailable`]
    /// when the OS refuses to spawn the pool's threads.
    pub fn new(optimizer: Optimizer, config: ServeConfig) -> Result<ServeRuntime, ProteusError> {
        config.validate()?;
        let workers = config.num_workers();
        let shared = Arc::new(PoolShared {
            optimizer,
            cache: OptimizedCache::with_faults(config.cache_capacity, config.faults),
            queues: StealQueues::new(workers),
            pending: AtomicUsize::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            tasks_executed: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
            tasks_crashed: AtomicUsize::new(0),
            tasks_detached: AtomicUsize::new(0),
            workers_respawned: AtomicUsize::new(0),
            task_ordinal: AtomicU64::new(0),
            faults: config.faults,
            label: config.replica_label,
            requests: Mutex::new(Vec::new()),
            slots: Mutex::new((0..workers).map(|_| None).collect()),
            exited: Mutex::new(Vec::new()),
            sup_park: Mutex::new(()),
            sup_cv: Condvar::new(),
        });
        for w in 0..workers {
            match spawn_worker(&shared, w) {
                Ok(handle) => relock(&shared.slots)[w] = Some(handle),
                Err(e) => {
                    // unwind the partial pool before reporting
                    shared.shutdown.store(true, Ordering::SeqCst);
                    {
                        let _guard = relock(&shared.park);
                        shared.cv.notify_all();
                    }
                    let spawned: Vec<JoinHandle<()>> = relock(&shared.slots)
                        .iter_mut()
                        .filter_map(Option::take)
                        .collect();
                    for handle in spawned {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("proteus-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .ok()
            // a pool without a supervisor still serves; it just cannot
            // respawn workers that abort
        };
        Ok(ServeRuntime {
            shared,
            config,
            supervisor,
        })
    }

    /// The configuration the pool was started with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Current pool counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            workers: self.shared.queues.workers(),
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            cache_entries: self.shared.cache.len(),
            tasks_crashed: self.shared.tasks_crashed.load(Ordering::Relaxed),
            tasks_detached: self.shared.tasks_detached.load(Ordering::Relaxed),
            workers_respawned: self.shared.workers_respawned.load(Ordering::SeqCst),
            cache_poison_heals: self.shared.cache.poison_heals(),
            killed: self.shared.killed.load(Ordering::SeqCst),
        }
    }

    /// Whether the runtime can still accept work (not shut down or
    /// killed). A fleet uses this as the replica health probe.
    pub fn is_healthy(&self) -> bool {
        !self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Tasks queued and not yet claimed by a worker — the router's
    /// queue-depth signal.
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// The shared optimized-member cache (disabled at
    /// [`ServeConfig::cache_capacity`] `= 0`).
    pub fn cache(&self) -> &OptimizedCache {
        &self.shared.cache
    }

    /// Opens a handle for one request's frame stream. Handles are cheap;
    /// every concurrent request gets its own, all sharing this pool.
    pub fn handle(&self, request_id: u64) -> RequestHandle {
        // a handle opened on a dead runtime is born closed/failed so its
        // first submit or recv reports the typed condition immediately
        let killed = self.shared.killed.load(Ordering::SeqCst);
        let state = Arc::new(RequestState {
            request_id,
            window: self.config.window,
            inner: Mutex::new(RequestInner {
                inflight: 0,
                seen: HashSet::new(),
                partial: HashMap::new(),
                done: VecDeque::new(),
                closed: self.shared.shutdown.load(Ordering::SeqCst),
                failed: killed.then(|| ProteusError::ReplicaUnavailable {
                    replica: self.shared.label,
                    detail: "handle opened on a killed runtime".into(),
                }),
            }),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
            optimize_ns: AtomicU64::new(0),
            wire_ns: AtomicU64::new(0),
        });
        let mut requests = relock(&self.shared.requests);
        // prune dead entries on every registration so a long-lived
        // runtime's registry stays proportional to *live* requests, not
        // to every request ever served
        requests.retain(|w| w.strong_count() > 0);
        requests.push(Arc::downgrade(&state));
        drop(requests);
        RequestHandle {
            pool: Arc::clone(&self.shared),
            _cancel: Arc::new(CancelGuard {
                state: Arc::clone(&state),
            }),
            state,
        }
    }

    /// Re-runs one interrupted serving lane from its journaled input
    /// frames (raw v1/v2 wire bytes, as a durable
    /// [`Store`](crate::store::Store) replays them) and returns the
    /// optimized response frames in completion order. Request-id-keyed
    /// determinism makes the replayed responses byte-identical to what
    /// the killed daemon would have produced.
    ///
    /// # Errors
    /// Everything [`RequestHandle::submit_bytes`] / [`RequestHandle::recv_bytes`]
    /// reject: decode failures, request-id mismatches, duplicates, and
    /// lane failures.
    pub fn resume_lane(
        &self,
        request_id: u64,
        frames: &[Bytes],
    ) -> Result<Vec<Bytes>, ProteusError> {
        let handle = self.handle(request_id);
        // submit-all-then-recv-all is deadlock-free: the window counts
        // frames awaiting optimization, not awaiting recv, so completed
        // frames accumulate in the done queue while we keep submitting
        for frame in frames {
            handle.submit_bytes(frame.clone())?;
        }
        let mut out = Vec::with_capacity(frames.len());
        for _ in frames {
            out.push(handle.recv_bytes()?);
        }
        Ok(out)
    }

    /// Drives one owner-side request end to end through the shared pool:
    /// streams the obfuscation session's frames in (overlapping generation
    /// with optimization), collects optimized frames as they complete, and
    /// reassembles the optimized protected model.
    ///
    /// The result is bit-identical to the serial single-session path —
    /// the concurrency stress suite asserts exactly that.
    ///
    /// # Errors
    /// Everything [`Proteus::obfuscate_session`], [`RequestHandle`], and
    /// [`DeobfuscationSession`] can reject.
    pub fn serve_request(
        &self,
        proteus: &Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<(Graph, TensorMap), ProteusError> {
        let mut session = proteus.obfuscate_session(graph, params, request_id)?;
        let handle = self.handle(request_id);
        let mut completed: Vec<SealedBucket> = Vec::with_capacity(session.num_buckets());
        while let Some(frame) = session.next_frame() {
            handle.submit(frame)?;
            // opportunistically drain finished frames while generating
            while let Some(done) = handle.try_recv() {
                completed.push(done);
            }
        }
        let secrets = session.finish()?;
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for frame in completed {
            reassembly.accept(frame)?;
        }
        while !reassembly.is_complete() {
            reassembly.accept(handle.recv()?)?;
        }
        reassembly.finish()
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = relock(&self.shared.park);
            self.shared.cv.notify_all();
        }
        {
            let _guard = relock(&self.shared.sup_park);
            self.shared.sup_cv.notify_all();
        }
        // supervisor first, so no new worker appears while we join slots
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let workers: Vec<JoinHandle<()>> = relock(&self.shared.slots)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        // workers have drained every queued task (kill path excepted —
        // its lanes were already failed); unblock any client still
        // waiting on a handle
        let mut requests = relock(&self.shared.requests);
        for weak in requests.drain(..) {
            if let Some(req) = weak.upgrade() {
                let mut lane = req.lane();
                lane.closed = true;
                drop(lane);
                req.cv.notify_all();
            }
        }
    }
}

/// One request's lane into a [`ServeRuntime`]: submit sealed frames
/// (blocking once the backpressure window fills), receive optimized
/// frames in completion order.
///
/// Cloning is cheap and clones refer to the same lane, so a producer
/// thread can submit while a consumer thread receives. When the **last**
/// clone is dropped the lane is cancelled: tasks still queued for it
/// detach (workers skip them), its reassembly state is freed, and
/// runtime shutdown never waits on the abandoned request.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    pool: Arc<PoolShared>,
    state: Arc<RequestState>,
    /// Shared drop hook: fires when the last clone goes away. Held only
    /// for its Drop side effect.
    _cancel: Arc<CancelGuard>,
}

impl std::fmt::Debug for CancelGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelGuard")
            .field("request_id", &self.state.request_id)
            .finish()
    }
}

impl std::fmt::Debug for RequestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestState")
            .field("request_id", &self.request_id)
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl RequestHandle {
    /// The request this handle serves.
    pub fn request_id(&self) -> u64 {
        self.state.request_id
    }

    /// Frames submitted and not yet fully optimized.
    pub fn in_flight(&self) -> usize {
        self.state.lane().inflight
    }

    /// Submits one sealed frame to the shared pool, splitting it into
    /// per-member tasks. Blocks while the request already has
    /// [`ServeConfig::window`] frames in flight — the backpressure that
    /// keeps one tenant from flooding the pool.
    ///
    /// # Errors
    /// [`ProteusError::DuplicateFrame`] when this bucket index was already
    /// submitted on this handle; [`ProteusError::Protocol`] when the
    /// runtime has shut down; [`ProteusError::WorkerCrashed`] /
    /// [`ProteusError::ReplicaUnavailable`] when the lane already failed.
    pub fn submit(&self, frame: SealedBucket) -> Result<(), ProteusError> {
        self.submit_inner(frame, None)
    }

    /// [`RequestHandle::submit`] with a wall-clock deadline on the
    /// backpressure wait: when the window is still full at `deadline`
    /// (e.g. every worker is stalled), returns [`ProteusError::Deadline`]
    /// instead of blocking forever.
    ///
    /// # Errors
    /// [`ProteusError::Deadline`] on timeout, plus everything
    /// [`RequestHandle::submit`] rejects.
    pub fn submit_deadline(
        &self,
        frame: SealedBucket,
        deadline: Instant,
    ) -> Result<(), ProteusError> {
        self.submit_inner(frame, Some(deadline))
    }

    fn submit_inner(
        &self,
        frame: SealedBucket,
        deadline: Option<Instant>,
    ) -> Result<(), ProteusError> {
        let SealedBucket {
            bucket_index,
            num_buckets,
            bucket,
        } = frame;
        {
            let lane = self.state.lane();
            if let Some(err) = &lane.failed {
                return Err(err.clone());
            }
            if lane.seen.contains(&bucket_index) {
                return Err(ProteusError::DuplicateFrame {
                    bucket_index,
                    request_id: self.state.request_id,
                });
            }
        }
        // classify members against the shared optimized-member cache
        // *outside* the request lock: hits are prefilled into their
        // reassembly slots, misses become pool tasks carrying their key so
        // the worker can publish its result for later requests
        let profile = self.pool.optimizer.profile();
        let mut slots: Vec<Option<BucketMember>> = Vec::with_capacity(bucket.members.len());
        let mut misses: Vec<(usize, Graph, TensorMap, Option<Bytes>)> = Vec::new();
        for (member, m) in bucket.members.into_iter().enumerate() {
            let key = self
                .pool
                .cache
                .is_enabled()
                .then(|| OptimizedCache::key_for(profile, &m.graph, &m.params));
            if let Some(hit) = key.as_ref().and_then(|k| self.pool.cache.lookup(k)) {
                slots.push(Some(hit));
            } else {
                slots.push(None);
                misses.push((member, m.graph, m.params, key));
            }
        }
        {
            let mut inner = self.state.lane();
            let submit_started = Instant::now();
            while inner.inflight >= self.state.window && !inner.closed && inner.failed.is_none() {
                match deadline {
                    None => {
                        inner = self
                            .state
                            .cv
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(ProteusError::Deadline {
                                request_id: self.state.request_id,
                                elapsed_ms: submit_started.elapsed().as_millis() as u64,
                            });
                        }
                        inner = self
                            .state
                            .cv
                            .wait_timeout(inner, deadline - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                }
            }
            if let Some(err) = &inner.failed {
                return Err(err.clone());
            }
            if inner.closed {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: serve runtime shut down while submitting bucket {bucket_index}",
                    self.state.request_id
                )));
            }
            // re-check: a concurrent producer on a cloned handle may have
            // submitted the same bucket while we classified or waited
            if !inner.seen.insert(bucket_index) {
                return Err(ProteusError::DuplicateFrame {
                    bucket_index,
                    request_id: self.state.request_id,
                });
            }
            if misses.is_empty() {
                // every member cached (or the frame was empty): nothing to
                // optimize, complete immediately so recv() and reassembly
                // see the frame without a trip through the pool. Every
                // slot was prefilled by construction (no misses), so an
                // empty one is memory corruption, not a request error.
                let mut members = Vec::with_capacity(slots.len());
                for (i, slot) in slots.into_iter().enumerate() {
                    match slot {
                        Some(m) => members.push(m),
                        None => {
                            unreachable!(
                                "bucket {bucket_index} member {i} neither cached nor missed"
                            )
                        }
                    }
                }
                inner.done.push_back(SealedBucket {
                    bucket_index,
                    num_buckets,
                    bucket: Bucket { members },
                });
                self.state.cv.notify_all();
                return Ok(());
            }
            inner.inflight += 1;
            inner.partial.insert(
                bucket_index,
                PartialBucket {
                    num_buckets,
                    remaining: misses.len(),
                    slots,
                },
            );
        }
        for (member, graph, params, cache_key) in misses {
            self.pool.push_task(Task {
                req: Arc::clone(&self.state),
                bucket_index,
                member,
                graph,
                params,
                cache_key,
            });
        }
        Ok(())
    }

    /// Decodes one multiplexed wire frame and submits it, rejecting
    /// frames whose request id does not match this handle — a frame
    /// injected from another request's stream never reaches this
    /// request's pipeline.
    ///
    /// # Errors
    /// [`ProteusError::Wire`] on decode failure, [`ProteusError::Protocol`]
    /// on a request-id mismatch, plus everything
    /// [`RequestHandle::submit`] rejects.
    pub fn submit_bytes(&self, wire: Bytes) -> Result<(), ProteusError> {
        let started = Instant::now();
        let decoded = SealedBucket::from_mux_bytes(wire);
        self.state
            .wire_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let (request_id, sealed) = decoded?;
        if request_id != self.state.request_id {
            return Err(ProteusError::protocol(format!(
                "frame for request {request_id:#x} injected into the stream of request {:#x}",
                self.state.request_id
            )));
        }
        self.submit(sealed)
    }

    /// Returns the next fully optimized frame, blocking until one
    /// completes. Frames surface in completion order, not bucket order.
    ///
    /// Already-completed frames drain before a failure surfaces: a lane
    /// that crashed after finishing three of five buckets still delivers
    /// those three (complete, byte-exact) frames, then the typed error.
    ///
    /// # Errors
    /// [`ProteusError::WorkerCrashed`] / [`ProteusError::ReplicaUnavailable`]
    /// when the lane failed; [`ProteusError::Protocol`] when nothing is in
    /// flight (the frame being waited for was never submitted — blocking
    /// would deadlock) or when the runtime shut down with this request's
    /// queue empty.
    pub fn recv(&self) -> Result<SealedBucket, ProteusError> {
        self.recv_inner(None)
    }

    /// [`RequestHandle::recv`] with a wall-clock deadline: returns
    /// [`ProteusError::Deadline`] when no frame has completed by
    /// `deadline` — the per-request latency budget the fleet enforces.
    ///
    /// # Errors
    /// [`ProteusError::Deadline`] on timeout, plus everything
    /// [`RequestHandle::recv`] rejects.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<SealedBucket, ProteusError> {
        self.recv_inner(Some(deadline))
    }

    fn recv_inner(&self, deadline: Option<Instant>) -> Result<SealedBucket, ProteusError> {
        let started = Instant::now();
        let mut inner = self.state.lane();
        loop {
            if let Some(frame) = inner.done.pop_front() {
                return Ok(frame);
            }
            if let Some(err) = &inner.failed {
                return Err(err.clone());
            }
            if inner.closed {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: serve runtime shut down with no completed frames pending",
                    self.state.request_id
                )));
            }
            if inner.inflight == 0 {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: recv with no frames in flight",
                    self.state.request_id
                )));
            }
            match deadline {
                None => {
                    inner = self
                        .state
                        .cv
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ProteusError::Deadline {
                            request_id: self.state.request_id,
                            elapsed_ms: started.elapsed().as_millis() as u64,
                        });
                    }
                    inner = self
                        .state
                        .cv
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Returns the next fully optimized frame if one is ready.
    pub fn try_recv(&self) -> Option<SealedBucket> {
        self.state.lane().done.pop_front()
    }

    /// The lane's failure, if it failed — without consuming completed
    /// frames the way [`RequestHandle::recv`] would.
    pub fn failure(&self) -> Option<ProteusError> {
        self.state.lane().failed.clone()
    }

    /// [`RequestHandle::recv`], encoded as one v2 multiplexed wire frame
    /// tagged with this request's id — ready to share a response byte
    /// stream with other requests.
    ///
    /// # Errors
    /// As [`RequestHandle::recv`].
    pub fn recv_bytes(&self) -> Result<Bytes, ProteusError> {
        let frame = self.recv()?;
        let started = Instant::now();
        let bytes = frame.to_mux_bytes(self.state.request_id);
        self.state
            .wire_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(bytes)
    }

    /// The optimizer-side phase breakdown of this request so far:
    /// worker-pool optimization time spent on its members and wire
    /// encode/decode time on the byte-stream entry points (blocking —
    /// backpressure waits and `recv` waits — is deliberately excluded).
    /// Merge with [`crate::ObfuscationSession::phases`] for the owner's
    /// full per-request picture.
    pub fn phases(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            optimization_ns: self.state.optimize_ns.load(Ordering::Relaxed),
            wire_ns: self.state.wire_ns.load(Ordering::Relaxed),
            ..PhaseBreakdown::default()
        }
    }
}

#[cfg(test)]
mod tests {
    // tests assert on Results aggressively; the unwrap/expect discipline
    // applies to the production request path, not to test scaffolding
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::config::{PartitionSpec, ProteusConfig};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use proteus_opt::Profile;

    fn quick_proteus() -> Proteus {
        Proteus::train(
            ProteusConfig {
                k: 2,
                partitions: PartitionSpec::Count(3),
                graphrnn: GraphRnnConfig {
                    epochs: 2,
                    max_nodes: 20,
                    ..Default::default()
                },
                topology_pool: 30,
                ..Default::default()
            },
            &[build(ModelKind::ResNet)],
        )
    }

    fn runtime(workers: usize, window: usize) -> ServeRuntime {
        ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig {
                workers,
                window,
                ..Default::default()
            },
        )
        .expect("runtime starts")
    }

    fn runtime_uncached(workers: usize, window: usize) -> ServeRuntime {
        ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig {
                workers,
                window,
                cache_capacity: 0,
                ..Default::default()
            },
        )
        .expect("runtime starts")
    }

    fn runtime_faulted(workers: usize, window: usize, faults: FaultPlan) -> ServeRuntime {
        ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig {
                workers,
                window,
                cache_capacity: 0,
                faults,
                replica_label: 7,
            },
        )
        .expect("runtime starts")
    }

    #[test]
    fn steal_queues_drain_from_any_worker() {
        let q: StealQueues<u32> = StealQueues::new(3);
        for i in 0..10 {
            q.push(i);
        }
        let mut seen: Vec<u32> = std::iter::from_fn(|| q.pop(2)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn served_request_matches_serial_session() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let optimizer = Optimizer::new(Profile::OrtLike);
        let rt = runtime(2, 2);
        let (served, served_params) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 5)
            .expect("serve");

        // serial reference: same session, frames optimized inline
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 5)
            .expect("session");
        let frames: Vec<SealedBucket> = session
            .by_ref()
            .map(|f| f.optimize(&optimizer, Some(1)))
            .collect();
        let secrets = session.finish().expect("secrets");
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for f in frames {
            reassembly.accept(f).expect("accept");
        }
        let (serial, serial_params) = reassembly.finish().expect("finish");
        assert_eq!(served, serial, "pool output diverged from serial path");
        assert_eq!(served_params, serial_params);
        assert!(rt.stats().tasks_executed >= 9, "3 buckets x 3 members");
    }

    #[test]
    fn duplicate_submission_is_rejected_with_typed_variant() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 4);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 9)
            .expect("session");
        let frame = session.next_frame().expect("frame");
        let handle = rt.handle(9);
        handle.submit(frame.clone()).expect("first submit");
        let err = handle.submit(frame).unwrap_err();
        assert!(
            matches!(
                err,
                ProteusError::DuplicateFrame {
                    bucket_index: 0,
                    request_id: 9
                }
            ),
            "{err:?}"
        );
        // the original frame still completes
        let done = handle.recv().expect("completes");
        assert_eq!(done.bucket_index, 0);
    }

    #[test]
    fn recv_without_inflight_is_a_typed_error_not_a_deadlock() {
        let rt = runtime(1, 1);
        let handle = rt.handle(1);
        let err = handle.recv().unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn cross_request_injection_is_rejected_at_submit() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 4);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 21)
            .expect("session");
        let frame = session.next_frame().expect("frame");
        let handle = rt.handle(22); // a different request's lane
        let err = handle.submit_bytes(frame.to_mux_bytes(21)).unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
        assert_eq!(handle.in_flight(), 0, "injected frame must not enqueue");
        // the matching lane accepts the same bytes
        let own = rt.handle(21);
        own.submit_bytes(frame.to_mux_bytes(21)).expect("submit");
        let done = own.recv_bytes().expect("optimized frame returns");
        let (rid, _) = SealedBucket::from_mux_bytes(done).expect("decodes");
        assert_eq!(rid, 21);
    }

    #[test]
    fn shutdown_unblocks_waiting_receivers() {
        let rt = runtime(1, 1);
        let handle = rt.handle(2);
        drop(rt);
        let err = handle.recv().unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
        let err = handle
            .submit(SealedBucket {
                bucket_index: 0,
                num_buckets: 1,
                bucket: Bucket {
                    members: Vec::new(),
                },
            })
            .unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn optimized_cache_replays_only_exact_keys() {
        let cache = OptimizedCache::new(2);
        let g1 = build(ModelKind::AlexNet);
        let g2 = build(ModelKind::MobileNet);
        let k1 = OptimizedCache::key_for(Profile::OrtLike, &g1, &TensorMap::new());
        let k2 = OptimizedCache::key_for(Profile::OrtLike, &g2, &TensorMap::new());
        // the profile participates in the key: same graph, different tag
        let k1_hidet = OptimizedCache::key_for(Profile::HidetLike, &g1, &TensorMap::new());
        assert_ne!(k1, k1_hidet);

        assert!(cache.lookup(&k1).is_none());
        assert!(cache.insert(k1.clone(), g1.clone(), TensorMap::new()));
        let hit = cache.lookup(&k1).expect("cached");
        assert_eq!(hit.graph, g1);
        assert!(cache.lookup(&k2).is_none(), "exact-key match only");
        // duplicate insert is a no-op, not a second resident copy
        assert!(!cache.insert(k1.clone(), g1.clone(), TensorMap::new()));
        assert_eq!(cache.len(), 1);

        // FIFO eviction: filling past capacity drops the oldest key
        assert!(cache.insert(k2.clone(), g2.clone(), TensorMap::new()));
        assert!(cache.insert(k1_hidet.clone(), g1.clone(), TensorMap::new()));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&k1).is_none(), "oldest entry evicted");
        assert!(cache.lookup(&k2).is_some());
        assert!(cache.lookup(&k1_hidet).is_some());

        // capacity 0 disables storage entirely
        let disabled = OptimizedCache::new(0);
        assert!(!disabled.is_enabled());
        assert!(!disabled.insert(k1.clone(), g1, TensorMap::new()));
        assert!(disabled.lookup(&k1).is_none());
        assert_eq!(disabled.len(), 0);
    }

    #[test]
    fn cache_replays_identical_requests_without_new_tasks() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(2, 2);
        let (first, first_params) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 5)
            .expect("first serve");
        let tasks_after_first = rt.stats().tasks_executed;
        assert!(tasks_after_first > 0);
        let (second, second_params) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 5)
            .expect("replay serve");
        let stats = rt.stats();
        assert_eq!(first, second, "cache hit diverged from pool output");
        assert_eq!(first_params, second_params);
        assert_eq!(
            stats.tasks_executed, tasks_after_first,
            "a replayed request must be served entirely from the cache"
        );
        assert!(stats.cache_hits > 0);
        assert_eq!(stats.cache_entries, tasks_after_first);
    }

    #[test]
    fn disabling_the_cache_preserves_output_bytes() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let cached = runtime(2, 2);
        let uncached = runtime_uncached(2, 2);
        let (a, pa) = cached
            .serve_request(&proteus, &g, &TensorMap::new(), 11)
            .expect("cached serve");
        let (b, pb) = uncached
            .serve_request(&proteus, &g, &TensorMap::new(), 11)
            .expect("uncached serve");
        assert_eq!(a, b, "cache toggled the served output");
        assert_eq!(pa, pb);
        let stats = uncached.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_entries, 0);
    }

    #[test]
    fn handle_phases_record_optimizer_and_wire_time() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime_uncached(2, 4);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 33)
            .expect("session");
        let handle = rt.handle(33);
        assert_eq!(handle.phases(), PhaseBreakdown::default());
        let mut submitted = 0;
        while let Some(frame) = session.next_frame() {
            handle
                .submit_bytes(frame.to_mux_bytes(33))
                .expect("submit bytes");
            submitted += 1;
        }
        for _ in 0..submitted {
            handle.recv_bytes().expect("optimized frame");
        }
        let phases = handle.phases();
        assert!(phases.optimization_ns > 0, "{phases:?}");
        assert!(phases.wire_ns > 0, "{phases:?}");
        assert_eq!(phases.generation_ns, 0, "generation belongs to the session");
        // the owner's session saw the generation side
        let owner = session.phases();
        assert!(owner.generation_ns > 0, "{owner:?}");
        assert_eq!(owner.optimization_ns, 0);
    }

    #[test]
    fn sentinel_pool_warms_the_shared_inventory() {
        let proteus = Arc::new(Proteus::train(
            ProteusConfig {
                k: 2,
                partitions: PartitionSpec::Count(2),
                graphrnn: GraphRnnConfig {
                    epochs: 2,
                    max_nodes: 20,
                    ..Default::default()
                },
                topology_pool: 8,
                sentinel_variants: 2,
                ..Default::default()
            },
            &[build(ModelKind::ResNet)],
        ));
        assert!(proteus.inventory().is_empty());
        let warmer = SentinelPool::spawn(Arc::clone(&proteus));
        let built = warmer.join();
        assert!(built > 0);
        // every key is memoized (even failed builds), so sessions never
        // re-derive a key the warmer already visited
        let keys = proteus.factory().key_space();
        assert_eq!(proteus.inventory().len(), keys.len());
        // warm entries are byte-identical to pure rebuilds
        for key in keys.into_iter().take(6) {
            let warm = proteus.inventory().lookup(&key).expect("memoized");
            let pure = proteus.factory().build_sentinel(key);
            match (warm, pure) {
                (Some(w), Some(p)) => assert_eq!(encode_graph(&w), encode_graph(&p)),
                (None, None) => {}
                (w, p) => panic!("warm {w:?} vs pure {p:?} diverged for {key:?}"),
            }
        }
        // a stopped warmer joins promptly and the sweep stays idempotent
        let warmer = SentinelPool::spawn(Arc::clone(&proteus));
        warmer.stop();
        let _ = warmer.join();
    }

    #[test]
    fn worker_panic_fails_only_its_own_lane() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        // the very first pool task panics (contained); later tasks run
        let rt = runtime_faulted(
            1,
            8,
            FaultPlan {
                panic_at: 1,
                ..FaultPlan::default()
            },
        );
        let err = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 41)
            .expect_err("first request must fail typed");
        assert!(
            matches!(err, ProteusError::WorkerCrashed { request_id: 41, .. }),
            "{err:?}"
        );
        assert_eq!(rt.stats().tasks_crashed, 1);
        assert!(rt.is_healthy(), "a contained panic must not down the pool");
        // the pool keeps serving: a later request is untouched and
        // bit-identical to its serial path
        let optimizer = Optimizer::new(Profile::OrtLike);
        let (served, served_params) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 42)
            .expect("pool recovered");
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 42)
            .expect("session");
        let frames: Vec<SealedBucket> = session
            .by_ref()
            .map(|f| f.optimize(&optimizer, Some(1)))
            .collect();
        let secrets = session.finish().expect("secrets");
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for f in frames {
            reassembly.accept(f).expect("accept");
        }
        let (serial, serial_params) = reassembly.finish().expect("finish");
        assert_eq!(served, serial);
        assert_eq!(served_params, serial_params);
    }

    #[test]
    fn aborting_worker_is_respawned_by_the_supervisor() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        // one worker; the first task's panic also retires the thread
        let rt = runtime_faulted(
            1,
            8,
            FaultPlan {
                panic_at: 1,
                abort_worker: true,
                ..FaultPlan::default()
            },
        );
        let err = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 51)
            .expect_err("crashed lane");
        assert!(matches!(err, ProteusError::WorkerCrashed { .. }), "{err:?}");
        // the supervisor notices the dead worker and refills the slot
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.stats().workers_respawned == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(rt.stats().workers_respawned >= 1, "supervisor respawned");
        // with the sole worker respawned, the pool still serves
        let (served, _) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 52)
            .expect("respawned worker serves");
        assert!(served.validate().is_ok());
    }

    #[test]
    fn kill_fault_surfaces_replica_unavailable() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime_faulted(
            2,
            8,
            FaultPlan {
                kill_at_task: 2,
                ..FaultPlan::default()
            },
        );
        let err = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 61)
            .expect_err("killed mid-request");
        assert!(
            matches!(err, ProteusError::ReplicaUnavailable { replica: 7, .. }),
            "{err:?}"
        );
        let stats = rt.stats();
        assert!(stats.killed);
        assert!(!rt.is_healthy());
        // a handle opened after the kill is born failed, not wedged
        let late = rt.handle(62);
        let err = late.recv().expect_err("born failed");
        assert!(
            matches!(err, ProteusError::ReplicaUnavailable { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn dropping_a_handle_detaches_pending_tasks() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        // one worker stalling 40ms per task: dropping the handle right
        // after submit leaves most tasks queued, which must detach
        let rt = runtime_faulted(
            1,
            8,
            FaultPlan {
                stall_one_in: 1,
                stall_ms: 40,
                ..FaultPlan::default()
            },
        );
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 71)
            .expect("session");
        let handle = rt.handle(71);
        while let Some(frame) = session.next_frame() {
            handle.submit(frame).expect("submit");
        }
        drop(handle); // cancel with tasks in flight
                      // a fresh request on the same pool is unaffected by the abandoned
                      // lane (its queued tasks are skipped, not executed)
        let (served, _) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 72)
            .expect("pool still serves after cancel");
        assert!(served.validate().is_ok());
        let stats = rt.stats();
        assert!(
            stats.tasks_detached > 0,
            "queued tasks of the dropped handle must detach: {stats:?}"
        );
        // shutdown must not hang on the cancelled request (Drop below
        // joins the workers; reaching the end of the test is the assert)
    }

    #[test]
    fn recv_deadline_times_out_typed() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        // every task stalls 300ms; a 40ms deadline must fire first
        let rt = runtime_faulted(
            1,
            8,
            FaultPlan {
                stall_one_in: 1,
                stall_ms: 300,
                ..FaultPlan::default()
            },
        );
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 81)
            .expect("session");
        let handle = rt.handle(81);
        let frame = session.next_frame().expect("frame");
        handle.submit(frame).expect("submit");
        let err = handle
            .recv_deadline(Instant::now() + Duration::from_millis(40))
            .expect_err("deadline fires");
        assert!(
            matches!(err, ProteusError::Deadline { request_id: 81, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn poisoned_cache_lock_heals_and_keeps_bytes_identical() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        // cache ON, with its lock poisoned on the very first insert
        let rt = ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig {
                workers: 2,
                window: 4,
                cache_capacity: 4096,
                faults: FaultPlan {
                    poison_cache_at: 1,
                    ..FaultPlan::default()
                },
                replica_label: 0,
            },
        )
        .expect("runtime");
        let (poisoned_run, pp) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 91)
            .expect("request survives the poisoned cache");
        assert!(rt.cache().poison_heals() >= 1, "heal path exercised");
        // bytes are unaffected: compare with a clean cached runtime
        let clean = runtime(2, 4);
        let (clean_run, cp) = clean
            .serve_request(&proteus, &g, &TensorMap::new(), 91)
            .expect("clean serve");
        assert_eq!(poisoned_run, clean_run, "poison heal changed bytes");
        assert_eq!(pp, cp);
        // the healed cache still works: a replay now hits
        let tasks_before = rt.stats().tasks_executed;
        let _ = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 91)
            .expect("replay");
        assert_eq!(
            rt.stats().tasks_executed,
            tasks_before,
            "replay served from the healed cache"
        );
    }

    #[test]
    fn backpressure_window_bounds_inflight_frames() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 1);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 3)
            .expect("session");
        let handle = rt.handle(3);
        let mut submitted = 0;
        while let Some(frame) = session.next_frame() {
            // window = 1: submit blocks until the previous frame finished,
            // so in_flight can never exceed 1
            handle.submit(frame).expect("submit");
            submitted += 1;
            assert!(handle.in_flight() <= 1, "window violated");
        }
        for _ in 0..submitted {
            handle.recv().expect("frame");
        }
    }
}
