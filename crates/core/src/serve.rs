//! Multi-tenant serving runtime: many concurrent obfuscation requests
//! multiplexed over one shared optimizer worker pool.
//!
//! PR 3's sessions made a single request streamable; at service scale the
//! optimizer party faces *many* owners at once, and spawning a thread
//! fan-out per call (the old [`crate::optimize_model`] behavior) lets any
//! one request grab every core while others queue behind it. The
//! [`ServeRuntime`] inverts that: a fixed pool of workers is created once,
//! every request's [`SealedBucket`] frames are split into per-member tasks
//! on a work-stealing scheduler ([`StealQueues`]), and workers interleave
//! members of *different* requests — so a request with one small bucket is
//! not stuck behind a tenant streaming a hundred large ones.
//!
//! Flow control is per request: a [`RequestHandle`] admits at most
//! [`ServeConfig::window`] frames in flight (submitted but not yet
//! optimized); submitting past the window blocks the producer, which is
//! exactly the backpressure a bounded transport would exert. Completed
//! frames are reassembled member-by-member and surface on the handle in
//! completion order — [`crate::DeobfuscationSession`] accepts them in any
//! order, so nothing downstream cares that bucket 3 finished before
//! bucket 0.
//!
//! On the wire, concurrent requests share one byte stream via the v2
//! multiplexed frame ([`proteus_graph::wire::encode_frame_v2`]): the
//! header carries a `request_id`, [`RequestHandle::submit_bytes`] rejects
//! frames whose id does not match the handle (cross-request injection),
//! and v1 single-request frames are still decoded for backward
//! compatibility.
//!
//! # Example
//!
//! ```
//! use proteus::serve::{ServeRuntime};
//! use proteus::{PartitionSpec, Proteus, ProteusConfig, ServeConfig};
//! use proteus_graph::TensorMap;
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_opt::{Optimizer, Profile};
//!
//! let proteus = Proteus::builder()
//!     .config(ProteusConfig {
//!         k: 2,
//!         partitions: PartitionSpec::Count(2),
//!         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!         topology_pool: 10,
//!         ..Default::default()
//!     })
//!     .corpus_model(proteus_models::build(proteus_models::ModelKind::ResNet))
//!     .train_shared()?;
//!
//! // the optimizer party: one pool shared by every request
//! let runtime = ServeRuntime::new(
//!     Optimizer::new(Profile::OrtLike),
//!     ServeConfig { workers: 2, window: 2 },
//! )?;
//!
//! // each request streams through the shared pool under its own id
//! let secret = proteus_models::build(proteus_models::ModelKind::AlexNet);
//! let (optimized, _params) = runtime.serve_request(&proteus, &secret, &TensorMap::new(), 11)?;
//! assert!(optimized.validate().is_ok());
//! assert!(runtime.stats().tasks_executed > 0);
//! # Ok::<(), proteus::ProteusError>(())
//! ```

use crate::bucket::{Bucket, BucketMember, SealedBucket};
use crate::config::ServeConfig;
use crate::error::ProteusError;
use crate::pipeline::Proteus;
use crate::session::DeobfuscationSession;
use bytes::Bytes;
use proteus_graph::{Graph, TensorMap};
use proteus_opt::Optimizer;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;

/// A work-stealing task scheduler over plain std primitives: one deque
/// per worker, round-robin placement, and steal-from-the-back when a
/// worker's own deque runs dry.
///
/// Used by the [`ServeRuntime`] pool (persistent workers) and by the
/// batch fan-out in [`crate::optimize_model_with_threads`] (scoped
/// workers) — both face the same imbalance: bucket members vary wildly in
/// size, so fixed chunking leaves workers idle behind one loaded with the
/// big graphs, and a single shared queue serializes every pop on one
/// lock.
///
/// ```
/// use proteus::serve::StealQueues;
///
/// let q: StealQueues<usize> = StealQueues::new(2);
/// for task in 0..4 {
///     q.push(task);
/// }
/// // worker 1 drains its own deque, then steals worker 0's
/// let drained: Vec<usize> = std::iter::from_fn(|| q.pop(1)).collect();
/// assert_eq!(drained.len(), 4);
/// ```
#[derive(Debug)]
pub struct StealQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    next: AtomicUsize,
}

impl<T> StealQueues<T> {
    /// Creates one deque per worker (at least one).
    pub fn new(workers: usize) -> StealQueues<T> {
        StealQueues {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// How many worker deques the scheduler has.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Places one task, round-robin across worker deques.
    pub fn push(&self, item: T) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w]
            .lock()
            .expect("queue poisoned")
            .push_back(item);
    }

    /// Pops the next task for `worker`: the front of its own deque, or —
    /// when that is empty — a steal from the back of another worker's.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        let own = worker % n;
        if let Some(item) = self.queues[own].lock().expect("queue poisoned").pop_front() {
            return Some(item);
        }
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(item) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(item);
            }
        }
        None
    }
}

/// One unit of pool work: optimize a single bucket member of one
/// request's frame.
struct Task {
    req: Arc<RequestState>,
    bucket_index: u32,
    member: usize,
    graph: Graph,
    params: TensorMap,
}

/// A frame being reassembled from its optimized members.
struct PartialBucket {
    num_buckets: u32,
    remaining: usize,
    slots: Vec<Option<BucketMember>>,
}

/// Request-side state: window accounting, partial reassembly, completed
/// frames.
struct RequestInner {
    /// Frames submitted but not yet fully optimized.
    inflight: usize,
    /// Bucket indices ever submitted on this handle (duplicate defense).
    seen: HashSet<u32>,
    /// Frames with members still being optimized.
    partial: HashMap<u32, PartialBucket>,
    /// Fully optimized frames, in completion order.
    done: VecDeque<SealedBucket>,
    /// Set when the runtime shuts down — receivers stop blocking.
    closed: bool,
}

struct RequestState {
    request_id: u64,
    window: usize,
    inner: Mutex<RequestInner>,
    cv: Condvar,
}

/// Counters of a running [`ServeRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Member-optimization tasks executed since construction.
    pub tasks_executed: usize,
    /// High-water mark of tasks queued and not yet claimed by a worker.
    pub max_queue_depth: usize,
}

struct PoolShared {
    optimizer: Optimizer,
    queues: StealQueues<Task>,
    /// Tasks pushed and not yet claimed; the park/wake signal.
    pending: AtomicUsize,
    park: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    tasks_executed: AtomicUsize,
    max_queue_depth: AtomicUsize,
    /// Every handle ever created, so shutdown can wake blocked clients.
    requests: Mutex<Vec<Weak<RequestState>>>,
}

impl PoolShared {
    fn push_task(&self, task: Task) {
        self.queues.push(task);
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let _guard = self.park.lock().expect("park poisoned");
        self.cv.notify_all();
    }

    fn run_task(&self, task: Task) {
        let (graph, params, _) = self.optimizer.optimize(&task.graph, &task.params);
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        let mut inner = task.req.inner.lock().expect("request poisoned");
        let partial = inner
            .partial
            .get_mut(&task.bucket_index)
            .expect("partial bucket exists until its last member lands");
        partial.slots[task.member] = Some(BucketMember { graph, params });
        partial.remaining -= 1;
        if partial.remaining == 0 {
            let finished = inner
                .partial
                .remove(&task.bucket_index)
                .expect("just updated");
            let members: Vec<BucketMember> = finished
                .slots
                .into_iter()
                .map(|slot| slot.expect("every member optimized"))
                .collect();
            inner.done.push_back(SealedBucket {
                bucket_index: task.bucket_index,
                num_buckets: finished.num_buckets,
                bucket: Bucket { members },
            });
            inner.inflight -= 1;
            task.req.cv.notify_all();
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if let Some(task) = self.queues.pop(worker) {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.run_task(task);
                continue;
            }
            let mut guard = self.park.lock().expect("park poisoned");
            while self.pending.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::SeqCst)
            {
                guard = self.cv.wait(guard).expect("park poisoned");
            }
            if self.pending.load(Ordering::SeqCst) == 0 && self.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }
}

/// The optimizer party as a long-lived service: a fixed worker pool that
/// interleaves sealed-bucket frames from many concurrent requests.
///
/// Construct once (per process, per optimizer profile), then open one
/// [`RequestHandle`] per obfuscation request with [`ServeRuntime::handle`]
/// — or drive a whole owner-side request through
/// [`ServeRuntime::serve_request`]. Dropping the runtime drains every
/// queued task, stops the workers, and unblocks any waiting client with a
/// typed error.
///
/// See the [module docs](crate::serve) for the scheduling and
/// backpressure model, and the README's "Serving architecture" section
/// for the deployment picture.
#[derive(Debug)]
pub struct ServeRuntime {
    shared: Arc<PoolShared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("workers", &self.queues.workers())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServeRuntime {
    /// Starts the worker pool.
    ///
    /// # Errors
    /// [`ProteusError::Config`] when `config` is degenerate
    /// ([`ServeConfig::validate`]).
    pub fn new(optimizer: Optimizer, config: ServeConfig) -> Result<ServeRuntime, ProteusError> {
        config.validate()?;
        let workers = config.num_workers();
        let shared = Arc::new(PoolShared {
            optimizer,
            queues: StealQueues::new(workers),
            pending: AtomicUsize::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_executed: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
            requests: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("proteus-serve-{w}"))
                    .spawn(move || shared.worker_loop(w))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(ServeRuntime {
            shared,
            config,
            workers: handles,
        })
    }

    /// The configuration the pool was started with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Current pool counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            workers: self.workers.len(),
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Opens a handle for one request's frame stream. Handles are cheap;
    /// every concurrent request gets its own, all sharing this pool.
    pub fn handle(&self, request_id: u64) -> RequestHandle {
        let state = Arc::new(RequestState {
            request_id,
            window: self.config.window,
            inner: Mutex::new(RequestInner {
                inflight: 0,
                seen: HashSet::new(),
                partial: HashMap::new(),
                done: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        let mut requests = self.shared.requests.lock().expect("registry poisoned");
        // prune dead entries on every registration so a long-lived
        // runtime's registry stays proportional to *live* requests, not
        // to every request ever served
        requests.retain(|w| w.strong_count() > 0);
        requests.push(Arc::downgrade(&state));
        drop(requests);
        RequestHandle {
            pool: Arc::clone(&self.shared),
            state,
        }
    }

    /// Drives one owner-side request end to end through the shared pool:
    /// streams the obfuscation session's frames in (overlapping generation
    /// with optimization), collects optimized frames as they complete, and
    /// reassembles the optimized protected model.
    ///
    /// The result is bit-identical to the serial single-session path —
    /// the concurrency stress suite asserts exactly that.
    ///
    /// # Errors
    /// Everything [`Proteus::obfuscate_session`], [`RequestHandle`], and
    /// [`DeobfuscationSession`] can reject.
    pub fn serve_request(
        &self,
        proteus: &Proteus,
        graph: &Graph,
        params: &TensorMap,
        request_id: u64,
    ) -> Result<(Graph, TensorMap), ProteusError> {
        let mut session = proteus.obfuscate_session(graph, params, request_id)?;
        let handle = self.handle(request_id);
        let mut completed: Vec<SealedBucket> = Vec::with_capacity(session.num_buckets());
        while let Some(frame) = session.next_frame() {
            handle.submit(frame)?;
            // opportunistically drain finished frames while generating
            while let Some(done) = handle.try_recv() {
                completed.push(done);
            }
        }
        let secrets = session.finish()?;
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for frame in completed {
            reassembly.accept(frame)?;
        }
        while !reassembly.is_complete() {
            reassembly.accept(handle.recv()?)?;
        }
        reassembly.finish()
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.park.lock().expect("park poisoned");
            self.shared.cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // workers have drained every queued task; unblock any client still
        // waiting on a handle
        let mut requests = self.shared.requests.lock().expect("registry poisoned");
        for weak in requests.drain(..) {
            if let Some(req) = weak.upgrade() {
                req.inner.lock().expect("request poisoned").closed = true;
                req.cv.notify_all();
            }
        }
    }
}

/// One request's lane into a [`ServeRuntime`]: submit sealed frames
/// (blocking once the backpressure window fills), receive optimized
/// frames in completion order.
///
/// Cloning is cheap and clones refer to the same lane, so a producer
/// thread can submit while a consumer thread receives.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    pool: Arc<PoolShared>,
    state: Arc<RequestState>,
}

impl std::fmt::Debug for RequestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestState")
            .field("request_id", &self.request_id)
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl RequestHandle {
    /// The request this handle serves.
    pub fn request_id(&self) -> u64 {
        self.state.request_id
    }

    /// Frames submitted and not yet fully optimized.
    pub fn in_flight(&self) -> usize {
        self.state.inner.lock().expect("request poisoned").inflight
    }

    /// Submits one sealed frame to the shared pool, splitting it into
    /// per-member tasks. Blocks while the request already has
    /// [`ServeConfig::window`] frames in flight — the backpressure that
    /// keeps one tenant from flooding the pool.
    ///
    /// # Errors
    /// [`ProteusError::DuplicateFrame`] when this bucket index was already
    /// submitted on this handle; [`ProteusError::Protocol`] when the
    /// runtime has shut down.
    pub fn submit(&self, frame: SealedBucket) -> Result<(), ProteusError> {
        let SealedBucket {
            bucket_index,
            num_buckets,
            bucket,
        } = frame;
        {
            let mut inner = self.state.inner.lock().expect("request poisoned");
            if inner.seen.contains(&bucket_index) {
                return Err(ProteusError::DuplicateFrame {
                    bucket_index,
                    request_id: self.state.request_id,
                });
            }
            while inner.inflight >= self.state.window && !inner.closed {
                inner = self.state.cv.wait(inner).expect("request poisoned");
            }
            if inner.closed {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: serve runtime shut down while submitting bucket {bucket_index}",
                    self.state.request_id
                )));
            }
            // re-check: a concurrent producer on a cloned handle may have
            // submitted the same bucket while we waited on the window
            if !inner.seen.insert(bucket_index) {
                return Err(ProteusError::DuplicateFrame {
                    bucket_index,
                    request_id: self.state.request_id,
                });
            }
            if bucket.members.is_empty() {
                // nothing to optimize; complete immediately so recv() and
                // reassembly see the frame
                inner.done.push_back(SealedBucket {
                    bucket_index,
                    num_buckets,
                    bucket: Bucket {
                        members: Vec::new(),
                    },
                });
                self.state.cv.notify_all();
                return Ok(());
            }
            inner.inflight += 1;
            inner.partial.insert(
                bucket_index,
                PartialBucket {
                    num_buckets,
                    remaining: bucket.members.len(),
                    slots: (0..bucket.members.len()).map(|_| None).collect(),
                },
            );
        }
        for (member, m) in bucket.members.into_iter().enumerate() {
            self.pool.push_task(Task {
                req: Arc::clone(&self.state),
                bucket_index,
                member,
                graph: m.graph,
                params: m.params,
            });
        }
        Ok(())
    }

    /// Decodes one multiplexed wire frame and submits it, rejecting
    /// frames whose request id does not match this handle — a frame
    /// injected from another request's stream never reaches this
    /// request's pipeline.
    ///
    /// # Errors
    /// [`ProteusError::Wire`] on decode failure, [`ProteusError::Protocol`]
    /// on a request-id mismatch, plus everything
    /// [`RequestHandle::submit`] rejects.
    pub fn submit_bytes(&self, wire: Bytes) -> Result<(), ProteusError> {
        let (request_id, sealed) = SealedBucket::from_mux_bytes(wire)?;
        if request_id != self.state.request_id {
            return Err(ProteusError::protocol(format!(
                "frame for request {request_id:#x} injected into the stream of request {:#x}",
                self.state.request_id
            )));
        }
        self.submit(sealed)
    }

    /// Returns the next fully optimized frame, blocking until one
    /// completes. Frames surface in completion order, not bucket order.
    ///
    /// # Errors
    /// [`ProteusError::Protocol`] when nothing is in flight (the frame
    /// being waited for was never submitted — blocking would deadlock) or
    /// when the runtime shut down with this request's queue empty.
    pub fn recv(&self) -> Result<SealedBucket, ProteusError> {
        let mut inner = self.state.inner.lock().expect("request poisoned");
        loop {
            if let Some(frame) = inner.done.pop_front() {
                return Ok(frame);
            }
            if inner.closed {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: serve runtime shut down with no completed frames pending",
                    self.state.request_id
                )));
            }
            if inner.inflight == 0 {
                return Err(ProteusError::protocol(format!(
                    "request {:#x}: recv with no frames in flight",
                    self.state.request_id
                )));
            }
            inner = self.state.cv.wait(inner).expect("request poisoned");
        }
    }

    /// Returns the next fully optimized frame if one is ready.
    pub fn try_recv(&self) -> Option<SealedBucket> {
        self.state
            .inner
            .lock()
            .expect("request poisoned")
            .done
            .pop_front()
    }

    /// [`RequestHandle::recv`], encoded as one v2 multiplexed wire frame
    /// tagged with this request's id — ready to share a response byte
    /// stream with other requests.
    ///
    /// # Errors
    /// As [`RequestHandle::recv`].
    pub fn recv_bytes(&self) -> Result<Bytes, ProteusError> {
        self.recv()
            .map(|frame| frame.to_mux_bytes(self.state.request_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartitionSpec, ProteusConfig};
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};
    use proteus_opt::Profile;

    fn quick_proteus() -> Proteus {
        Proteus::train(
            ProteusConfig {
                k: 2,
                partitions: PartitionSpec::Count(3),
                graphrnn: GraphRnnConfig {
                    epochs: 2,
                    max_nodes: 20,
                    ..Default::default()
                },
                topology_pool: 30,
                ..Default::default()
            },
            &[build(ModelKind::ResNet)],
        )
    }

    fn runtime(workers: usize, window: usize) -> ServeRuntime {
        ServeRuntime::new(
            Optimizer::new(Profile::OrtLike),
            ServeConfig { workers, window },
        )
        .expect("runtime starts")
    }

    #[test]
    fn steal_queues_drain_from_any_worker() {
        let q: StealQueues<u32> = StealQueues::new(3);
        for i in 0..10 {
            q.push(i);
        }
        let mut seen: Vec<u32> = std::iter::from_fn(|| q.pop(2)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(q.pop(0).is_none());
    }

    #[test]
    fn served_request_matches_serial_session() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let optimizer = Optimizer::new(Profile::OrtLike);
        let rt = runtime(2, 2);
        let (served, served_params) = rt
            .serve_request(&proteus, &g, &TensorMap::new(), 5)
            .expect("serve");

        // serial reference: same session, frames optimized inline
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 5)
            .expect("session");
        let frames: Vec<SealedBucket> = session
            .by_ref()
            .map(|f| f.optimize(&optimizer, Some(1)))
            .collect();
        let secrets = session.finish().expect("secrets");
        let mut reassembly = DeobfuscationSession::new(&secrets);
        for f in frames {
            reassembly.accept(f).expect("accept");
        }
        let (serial, serial_params) = reassembly.finish().expect("finish");
        assert_eq!(served, serial, "pool output diverged from serial path");
        assert_eq!(served_params, serial_params);
        assert!(rt.stats().tasks_executed >= 9, "3 buckets x 3 members");
    }

    #[test]
    fn duplicate_submission_is_rejected_with_typed_variant() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 4);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 9)
            .expect("session");
        let frame = session.next_frame().expect("frame");
        let handle = rt.handle(9);
        handle.submit(frame.clone()).expect("first submit");
        let err = handle.submit(frame).unwrap_err();
        assert!(
            matches!(
                err,
                ProteusError::DuplicateFrame {
                    bucket_index: 0,
                    request_id: 9
                }
            ),
            "{err:?}"
        );
        // the original frame still completes
        let done = handle.recv().expect("completes");
        assert_eq!(done.bucket_index, 0);
    }

    #[test]
    fn recv_without_inflight_is_a_typed_error_not_a_deadlock() {
        let rt = runtime(1, 1);
        let handle = rt.handle(1);
        let err = handle.recv().unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn cross_request_injection_is_rejected_at_submit() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 4);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 21)
            .expect("session");
        let frame = session.next_frame().expect("frame");
        let handle = rt.handle(22); // a different request's lane
        let err = handle.submit_bytes(frame.to_mux_bytes(21)).unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
        assert_eq!(handle.in_flight(), 0, "injected frame must not enqueue");
        // the matching lane accepts the same bytes
        let own = rt.handle(21);
        own.submit_bytes(frame.to_mux_bytes(21)).expect("submit");
        let done = own.recv_bytes().expect("optimized frame returns");
        let (rid, _) = SealedBucket::from_mux_bytes(done).expect("decodes");
        assert_eq!(rid, 21);
    }

    #[test]
    fn shutdown_unblocks_waiting_receivers() {
        let rt = runtime(1, 1);
        let handle = rt.handle(2);
        drop(rt);
        let err = handle.recv().unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
        let err = handle
            .submit(SealedBucket {
                bucket_index: 0,
                num_buckets: 1,
                bucket: Bucket {
                    members: Vec::new(),
                },
            })
            .unwrap_err();
        assert!(matches!(err, ProteusError::Protocol { .. }), "{err:?}");
    }

    #[test]
    fn backpressure_window_bounds_inflight_frames() {
        let proteus = quick_proteus();
        let g = build(ModelKind::AlexNet);
        let rt = runtime(1, 1);
        let mut session = proteus
            .obfuscate_session(&g, &TensorMap::new(), 3)
            .expect("session");
        let handle = rt.handle(3);
        let mut submitted = 0;
        while let Some(frame) = session.next_frame() {
            // window = 1: submit blocks until the previous frame finished,
            // so in_flight can never exceed 1
            handle.submit(frame).expect("submit");
            submitted += 1;
            assert!(handle.in_flight() <= 1, "window violated");
        }
        for _ in 0..submitted {
            handle.recv().expect("frame");
        }
    }
}
