//! The warm sentinel inventory: memoized sentinel graphs keyed by their
//! generation identity.
//!
//! PR 6 makes sentinel content a *pure function* of a [`SentinelKey`]
//! (topology pool position, operator regime, variant index) and the
//! trained state: [`crate::SentinelFactory::build_sentinel`] seeds a fresh
//! generator from the factory's generation seed and the key, so the same
//! key always yields the same graph, bit for bit. The session's
//! per-request randomness only *selects* keys (band sampling + variant
//! draws) and shuffles buckets — it never feeds graph content.
//!
//! That purity is what makes this inventory safe: it is plain
//! memoization. A warm hit returns exactly the bytes the inline path
//! would have built, so enabling or disabling the inventory — or racing
//! any number of concurrent requests through it — cannot change a single
//! wire byte. `tests/serve_latency.rs` and `tests/sentinel_pool.rs`
//! assert this across the model zoo and under concurrent interleavings.
//!
//! The inventory is bounded (capacity defaults to the full key space,
//! `topology_pool x 2 regimes x sentinel_variants`), can be disabled at
//! runtime (every draw then falls back to inline generation), and its
//! entries persist across restarts via the `PRTA` artifact's sentinel
//! section ([`crate::artifact`]).

use crate::operators::Regime;
use proteus_graph::Graph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::RwLock;

/// The generation identity of one sentinel graph. Two draws with equal
/// keys produce identical graphs (given the same trained factory), which
/// is the invariant the warm inventory and the optimized-member cache
/// both rest on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SentinelKey {
    /// Position in the trained topology pool
    /// ([`proteus_graphgen::TopologySampler::topology`]).
    pub topo: u32,
    /// Operator regime the sentinel is populated under. Ordered after
    /// `topo` so snapshots sort deterministically.
    pub regime: RegimeTag,
    /// Variant index below [`crate::ProteusConfig::sentinel_variants`],
    /// decorrelating sentinels that share a topology and regime.
    pub variant: u32,
}

/// [`Regime`] with the ordering/compactness the inventory needs for
/// canonical snapshots and the artifact codec. Kept separate so the
/// protocol-facing `Regime` stays a plain two-state enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegimeTag {
    /// [`Regime::Cnn`].
    Cnn = 0,
    /// [`Regime::Transformer`].
    Transformer = 1,
}

impl From<Regime> for RegimeTag {
    fn from(r: Regime) -> RegimeTag {
        match r {
            Regime::Cnn => RegimeTag::Cnn,
            Regime::Transformer => RegimeTag::Transformer,
        }
    }
}

impl From<RegimeTag> for Regime {
    fn from(t: RegimeTag) -> Regime {
        match t {
            RegimeTag::Cnn => Regime::Cnn,
            RegimeTag::Transformer => Regime::Transformer,
        }
    }
}

impl SentinelKey {
    /// Builds a key from its parts.
    pub fn new(topo: u32, regime: Regime, variant: u32) -> SentinelKey {
        SentinelKey {
            topo,
            regime: regime.into(),
            variant,
        }
    }
}

/// Inventory hit/miss counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InventoryStats {
    /// Entries currently memoized (including negative entries for keys
    /// whose population failed).
    pub len: usize,
    /// Maximum entries the inventory will hold.
    pub capacity: usize,
    /// Draws answered from the inventory.
    pub hits: usize,
    /// Draws that had to build inline (then memoized when space allowed).
    pub misses: usize,
}

/// A bounded, concurrent memo of sentinel graphs by [`SentinelKey`].
///
/// Negative results are memoized too (`None`: the keyed topology admits
/// no valid operator assignment), so a failing key costs its population
/// attempt once, not once per request.
#[derive(Debug)]
pub struct SentinelInventory {
    capacity: usize,
    enabled: AtomicBool,
    entries: RwLock<HashMap<SentinelKey, Option<Graph>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SentinelInventory {
    /// An enabled, empty inventory holding at most `capacity` entries.
    pub fn new(capacity: usize) -> SentinelInventory {
        SentinelInventory {
            capacity,
            enabled: AtomicBool::new(true),
            entries: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Whether draws consult the inventory. When disabled every draw
    /// falls back to inline generation — byte-identical output, inline
    /// cost.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the inventory at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Maximum entries this inventory will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.entries.read().expect("inventory poisoned").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> InventoryStats {
        InventoryStats {
            len: self.len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Looks up a key, counting a hit or miss. `Some(None)` is a memoized
    /// population failure; `None` means the key has not been built yet.
    pub fn lookup(&self, key: &SentinelKey) -> Option<Option<Graph>> {
        let entries = self.entries.read().expect("inventory poisoned");
        match entries.get(key) {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a built value when capacity allows (a full inventory
    /// keeps serving what it has; new keys stay inline — the bounded,
    /// no-eviction policy keeps warm entries stable and the memory
    /// ceiling hard). Returns whether the entry was stored.
    pub fn store(&self, key: SentinelKey, value: Option<Graph>) -> bool {
        let mut entries = self.entries.write().expect("inventory poisoned");
        if entries.contains_key(&key) {
            return true;
        }
        if entries.len() >= self.capacity {
            return false;
        }
        entries.insert(key, value);
        true
    }

    /// Every successfully built entry, sorted by key — the canonical
    /// order the artifact's sentinel section is encoded in.
    pub fn snapshot(&self) -> Vec<(SentinelKey, Graph)> {
        let entries = self.entries.read().expect("inventory poisoned");
        let mut out: Vec<(SentinelKey, Graph)> = entries
            .iter()
            .filter_map(|(k, v)| v.as_ref().map(|g| (*k, g.clone())))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Seeds the inventory from persisted entries (the artifact's
    /// sentinel section), respecting capacity.
    pub fn prefill(&self, entries: impl IntoIterator<Item = (SentinelKey, Graph)>) -> usize {
        let mut stored = 0;
        for (key, graph) in entries {
            if self.store(key, Some(graph)) {
                stored += 1;
            }
        }
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    fn tiny_graph(tag: u64) -> Graph {
        let mut g = Graph::new(format!("t{tag}"));
        let x = g.input([1, 3, 4, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        g
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let inv = SentinelInventory::new(8);
        let key = SentinelKey::new(0, Regime::Cnn, 0);
        assert!(inv.lookup(&key).is_none());
        assert!(inv.store(key, Some(tiny_graph(1))));
        assert!(matches!(inv.lookup(&key), Some(Some(_))));
        let stats = inv.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn capacity_bounds_entries_without_evicting() {
        let inv = SentinelInventory::new(2);
        for topo in 0..4u32 {
            inv.store(
                SentinelKey::new(topo, Regime::Cnn, 0),
                Some(tiny_graph(topo as u64)),
            );
        }
        assert_eq!(inv.len(), 2);
        // the first two keys stayed; later stores were refused
        assert!(inv.lookup(&SentinelKey::new(0, Regime::Cnn, 0)).is_some());
        assert!(inv.lookup(&SentinelKey::new(3, Regime::Cnn, 0)).is_none());
        // re-storing an existing key reports success and changes nothing
        assert!(inv.store(SentinelKey::new(0, Regime::Cnn, 0), None));
        assert_eq!(inv.len(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_skips_failures() {
        let inv = SentinelInventory::new(8);
        inv.store(
            SentinelKey::new(2, Regime::Transformer, 1),
            Some(tiny_graph(1)),
        );
        inv.store(SentinelKey::new(0, Regime::Cnn, 3), Some(tiny_graph(2)));
        inv.store(SentinelKey::new(1, Regime::Cnn, 0), None);
        let snap = inv.snapshot();
        let keys: Vec<SentinelKey> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                SentinelKey::new(0, Regime::Cnn, 3),
                SentinelKey::new(2, Regime::Transformer, 1),
            ]
        );
        // prefill round-trips the snapshot
        let other = SentinelInventory::new(8);
        assert_eq!(other.prefill(snap), 2);
        assert_eq!(other.len(), 2);
    }
}
