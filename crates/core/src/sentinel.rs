//! The sentinel factory: trained topology generator + operator population,
//! composed per the paper's §4.1.2 pipeline.

use crate::config::{ProteusConfig, SentinelMode};
use crate::operators::{detect_regime, populate, PopulationConfig};
use crate::semantic::BigramModel;
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::{
    induce_orientation, perturb_many, GraphRnn, PerturbConfig, TopologySampler, UGraph,
};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trained sentinel generator.
///
/// Training mirrors the paper: the GraphRNN learns topologies of *real*
/// subgraphs (obtained by partitioning a corpus of public models), and the
/// bigram model learns operator-sequence statistics from the same corpus.
/// The protected model itself is never required to be in the corpus —
/// experiments use leave-one-out corpora.
#[derive(Debug)]
pub struct SentinelFactory {
    rnn: GraphRnn,
    sampler: TopologySampler,
    bigram: BigramModel,
    population: PopulationConfig,
    beta: f64,
}

impl SentinelFactory {
    /// Trains the factory on a corpus of (public) models.
    pub fn train(config: &ProteusConfig, corpus: &[Graph]) -> SentinelFactory {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e47);
        // 1. corpus of real subgraph topologies
        let mut topologies: Vec<UGraph> = Vec::new();
        for (i, g) in corpus.iter().enumerate() {
            let assignment = partition_by_size(g, 8, 4, config.seed.wrapping_add(i as u64));
            if let Ok(plan) = PartitionPlan::extract(g, &TensorMap::new(), &assignment) {
                for piece in &plan.pieces {
                    let u = UGraph::from_graph(&piece.graph);
                    if u.len() >= 3 {
                        topologies.push(u);
                    }
                }
            }
        }
        // 2. train GraphRNN and sample the generation pool
        let mut rnn = GraphRnn::new(config.graphrnn, config.seed ^ 0x6e11);
        rnn.train(&topologies, config.seed ^ 0x7a21);
        let mut pool = rnn.sample_many(config.topology_pool, 3, &mut rng);
        // guarantee a usable pool even if the generator mode-collapses:
        // fall back to corpus topologies (still "realistic" by construction)
        if pool.len() < config.topology_pool / 2 {
            pool.extend(topologies.iter().cloned());
        }
        let sampler = TopologySampler::new(pool);
        // 3. operator-sequence statistics
        let refs: Vec<&Graph> = corpus.iter().collect();
        let bigram = BigramModel::fit(&refs, 0.1);
        SentinelFactory {
            rnn,
            sampler,
            bigram,
            population: config.population,
            beta: config.beta,
        }
    }

    /// Reassembles a trained factory from persisted state: the GraphRNN
    /// weights, the sampled topology pool (in its original order — the
    /// sampler's draws depend on it), and the fitted bigram model. The
    /// sampler's statistics and density are recomputed deterministically
    /// from the pool, so a factory rebuilt this way generates the same
    /// sentinels, bit for bit, as the one that was saved.
    pub fn from_parts(
        rnn: GraphRnn,
        pool: Vec<UGraph>,
        bigram: BigramModel,
        population: PopulationConfig,
        beta: f64,
    ) -> SentinelFactory {
        SentinelFactory {
            rnn,
            sampler: TopologySampler::new(pool),
            bigram,
            population,
            beta,
        }
    }

    /// The trained GraphRNN topology generator (exposed for persistence
    /// and evaluation harnesses).
    pub fn rnn(&self) -> &GraphRnn {
        &self.rnn
    }

    /// The fitted bigram model (exposed for evaluation harnesses).
    pub fn bigram(&self) -> &BigramModel {
        &self.bigram
    }

    /// The operator-population settings in effect.
    pub fn population(&self) -> &PopulationConfig {
        &self.population
    }

    /// The statistics band width (`beta`) in effect.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The topology sampler (exposed for evaluation harnesses).
    pub fn sampler(&self) -> &TopologySampler {
        &self.sampler
    }

    /// Generates `k` sentinels for one protected subgraph.
    pub fn generate(
        &self,
        protected: &Graph,
        k: usize,
        mode: SentinelMode,
        rng: &mut StdRng,
    ) -> Vec<Graph> {
        match mode {
            SentinelMode::Perturb => perturb_many(protected, PerturbConfig::default(), k, rng),
            SentinelMode::Generative => self.generate_generative(protected, k, rng),
        }
    }

    fn generate_generative(&self, protected: &Graph, k: usize, rng: &mut StdRng) -> Vec<Graph> {
        let regime = detect_regime(protected);
        let topo = UGraph::from_graph(protected);
        let mut out: Vec<Graph> = Vec::with_capacity(k);
        let mut rounds = 0usize;
        while out.len() < k && rounds < 8 {
            rounds += 1;
            let want = (k - out.len()).max(1) * 2;
            let candidates = self.sampler.sample_similar(&topo, self.beta, want, rng);
            for cand in candidates {
                if out.len() >= k {
                    break;
                }
                let dag = induce_orientation(&cand);
                if let Some(g) = populate(&dag, regime, &self.bigram, &self.population, rng) {
                    out.push(g);
                }
            }
        }
        // Population can fail on adversarial topologies; perturbation fills
        // the remainder so the bucket always holds exactly k sentinels.
        if out.len() < k {
            let missing = k - out.len();
            out.extend(perturb_many(
                protected,
                PerturbConfig::default(),
                missing,
                rng,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};

    fn quick_config() -> ProteusConfig {
        ProteusConfig {
            graphrnn: GraphRnnConfig {
                epochs: 3,
                max_nodes: 24,
                ..Default::default()
            },
            topology_pool: 40,
            ..Default::default()
        }
    }

    fn subgraph_of(kind: ModelKind) -> Graph {
        let g = build(kind);
        let a = partition_by_size(&g, 8, 4, 1);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        plan.pieces
            .iter()
            .map(|p| p.graph.clone())
            .max_by_key(|g| g.len())
            .expect("nonempty")
    }

    #[test]
    fn factory_generates_k_valid_sentinels() {
        let cfg = quick_config();
        let corpus: Vec<Graph> = [ModelKind::ResNet, ModelKind::MobileNet]
            .iter()
            .map(|&k| build(k))
            .collect();
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::GoogleNet);
        let mut rng = StdRng::seed_from_u64(5);
        let sentinels = factory.generate(&protected, 6, SentinelMode::Generative, &mut rng);
        assert_eq!(sentinels.len(), 6);
        for s in &sentinels {
            s.validate().unwrap();
        }
    }

    #[test]
    fn perturb_mode_produces_protected_like_sentinels() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::SEResNet);
        let mut rng = StdRng::seed_from_u64(6);
        let sentinels = factory.generate(&protected, 5, SentinelMode::Perturb, &mut rng);
        assert_eq!(sentinels.len(), 5);
        for s in &sentinels {
            s.validate().unwrap();
            // perturbations stay within a few nodes of the original
            let diff = (s.len() as i64 - protected.len() as i64).abs();
            assert!(
                diff <= 4,
                "perturbed size {} vs {}",
                s.len(),
                protected.len()
            );
        }
    }

    #[test]
    fn sentinels_are_diverse() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::ResNet);
        let mut rng = StdRng::seed_from_u64(7);
        let sentinels = factory.generate(&protected, 8, SentinelMode::Generative, &mut rng);
        let mut distinct = std::collections::HashSet::new();
        for s in &sentinels {
            let sig: Vec<_> = s.iter().map(|(_, n)| n.op.opcode()).collect();
            distinct.insert(format!("{sig:?}"));
        }
        assert!(
            distinct.len() >= 4,
            "only {} distinct sentinels",
            distinct.len()
        );
    }
}
