//! The sentinel factory: trained topology generator + operator population,
//! composed per the paper's §4.1.2 pipeline.
//!
//! # Sentinels as pure functions
//!
//! Sentinel *content* is a pure function of the trained state and a
//! [`SentinelKey`]: [`SentinelFactory::build_sentinel`] resolves the key's
//! topology from the pool, orients it, and populates operators with a
//! fresh generator seeded from the factory's generation seed and the key —
//! never from the caller's randomness. The session's per-request stream
//! only *selects* keys (band sampling + a variant draw per candidate) and
//! shuffles buckets. This split is what makes the warm inventory
//! ([`SentinelInventory`]) sound: memoizing `build_sentinel` by key cannot
//! change any output byte, so warm and inline draws are interchangeable.

use crate::config::{ProteusConfig, SentinelMode};
use crate::inventory::{SentinelInventory, SentinelKey};
use crate::operators::{detect_regime, populate, PopulationConfig, Regime};
use crate::semantic::BigramModel;
use crate::session::splitmix64;
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::{
    induce_orientation, perturb_many, GraphRnn, PerturbConfig, TopologySampler, UGraph,
};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A trained sentinel generator.
///
/// Training mirrors the paper: the GraphRNN learns topologies of *real*
/// subgraphs (obtained by partitioning a corpus of public models), and the
/// bigram model learns operator-sequence statistics from the same corpus.
/// The protected model itself is never required to be in the corpus —
/// experiments use leave-one-out corpora.
#[derive(Debug)]
pub struct SentinelFactory {
    rnn: GraphRnn,
    sampler: TopologySampler,
    bigram: BigramModel,
    population: PopulationConfig,
    beta: f64,
    gen_seed: u64,
    variants: usize,
}

impl SentinelFactory {
    /// Trains the factory on a corpus of (public) models.
    pub fn train(config: &ProteusConfig, corpus: &[Graph]) -> SentinelFactory {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e47);
        // 1. corpus of real subgraph topologies
        let mut topologies: Vec<UGraph> = Vec::new();
        for (i, g) in corpus.iter().enumerate() {
            let assignment = partition_by_size(g, 8, 4, config.seed.wrapping_add(i as u64));
            if let Ok(plan) = PartitionPlan::extract(g, &TensorMap::new(), &assignment) {
                for piece in &plan.pieces {
                    let u = UGraph::from_graph(&piece.graph);
                    if u.len() >= 3 {
                        topologies.push(u);
                    }
                }
            }
        }
        // 2. train GraphRNN and sample the generation pool
        let mut rnn = GraphRnn::new(config.graphrnn, config.seed ^ 0x6e11);
        rnn.train(&topologies, config.seed ^ 0x7a21);
        let mut pool = rnn.sample_many(config.topology_pool, 3, &mut rng);
        // guarantee a usable pool even if the generator mode-collapses:
        // fall back to corpus topologies (still "realistic" by construction)
        if pool.len() < config.topology_pool / 2 {
            pool.extend(topologies.iter().cloned());
        }
        let sampler = TopologySampler::new(pool);
        // 3. operator-sequence statistics
        let refs: Vec<&Graph> = corpus.iter().collect();
        let bigram = BigramModel::fit(&refs, 0.1);
        SentinelFactory {
            rnn,
            sampler,
            bigram,
            population: config.population,
            beta: config.beta,
            gen_seed: SentinelFactory::generation_seed(config.seed),
            variants: config.sentinel_variants.max(1),
        }
    }

    /// The sentinel-generation seed derived from a master seed. Both
    /// [`SentinelFactory::train`] and artifact restoration derive through
    /// this one function, so a factory rebuilt from persisted state builds
    /// byte-identical sentinels for every key.
    pub fn generation_seed(master_seed: u64) -> u64 {
        splitmix64(master_seed ^ 0x9e17_51de)
    }

    /// Reassembles a trained factory from persisted state: the GraphRNN
    /// weights, the sampled topology pool (in its original order — the
    /// sampler's draws depend on it), and the fitted bigram model. The
    /// sampler's statistics and density are recomputed deterministically
    /// from the pool, so a factory rebuilt this way generates the same
    /// sentinels, bit for bit, as the one that was saved.
    pub fn from_parts(
        rnn: GraphRnn,
        pool: Vec<UGraph>,
        bigram: BigramModel,
        population: PopulationConfig,
        beta: f64,
        gen_seed: u64,
        variants: usize,
    ) -> SentinelFactory {
        SentinelFactory {
            rnn,
            sampler: TopologySampler::new(pool),
            bigram,
            population,
            beta,
            gen_seed,
            variants: variants.max(1),
        }
    }

    /// The trained GraphRNN topology generator (exposed for persistence
    /// and evaluation harnesses).
    pub fn rnn(&self) -> &GraphRnn {
        &self.rnn
    }

    /// The fitted bigram model (exposed for evaluation harnesses).
    pub fn bigram(&self) -> &BigramModel {
        &self.bigram
    }

    /// The operator-population settings in effect.
    pub fn population(&self) -> &PopulationConfig {
        &self.population
    }

    /// The statistics band width (`beta`) in effect.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The topology sampler (exposed for evaluation harnesses).
    pub fn sampler(&self) -> &TopologySampler {
        &self.sampler
    }

    /// The sentinel-generation seed in effect (persisted by the artifact).
    pub fn gen_seed(&self) -> u64 {
        self.gen_seed
    }

    /// Sentinel variants per (topology, regime) pair.
    pub fn variants(&self) -> usize {
        self.variants
    }

    /// Every key this factory can build: the full
    /// `topology_pool x 2 regimes x variants` space, in canonical (sorted)
    /// order. This is the warm inventory's working set; its length bounds
    /// the inventory capacity.
    pub fn key_space(&self) -> Vec<SentinelKey> {
        let mut keys = Vec::with_capacity(self.sampler.len().saturating_mul(2 * self.variants));
        for topo in 0..self.sampler.len() as u32 {
            for regime in [Regime::Cnn, Regime::Transformer] {
                for variant in 0..self.variants as u32 {
                    keys.push(SentinelKey::new(topo, regime, variant));
                }
            }
        }
        keys
    }

    /// Builds the sentinel a key names, from scratch. Pure: the operator
    /// population draws from a fresh generator seeded by the factory's
    /// generation seed and the key, so equal keys yield bit-identical
    /// graphs. `None` when the key's topology index is out of range or the
    /// topology admits no valid operator assignment.
    pub fn build_sentinel(&self, key: SentinelKey) -> Option<Graph> {
        let topo = self.sampler.topology(key.topo as usize)?;
        let dag = induce_orientation(topo);
        // injective pack: variant fills the low 32 bits, the regime bit
        // and topology index sit above it
        let packed = ((key.topo as u64) << 33) | ((key.regime as u64) << 32) | key.variant as u64;
        let mut rng = StdRng::seed_from_u64(splitmix64(self.gen_seed ^ splitmix64(packed)));
        populate(
            &dag,
            key.regime.into(),
            &self.bigram,
            &self.population,
            &mut rng,
        )
    }

    /// [`SentinelFactory::build_sentinel`] through an optional warm
    /// inventory. An enabled inventory answers memoized keys directly and
    /// memoizes fresh builds; a disabled or absent inventory builds inline.
    /// Either way the result is the same bytes — the inventory is pure
    /// memoization.
    pub fn sentinel(
        &self,
        key: SentinelKey,
        inventory: Option<&SentinelInventory>,
    ) -> Option<Graph> {
        match inventory.filter(|inv| inv.is_enabled()) {
            Some(inv) => {
                if let Some(memo) = inv.lookup(&key) {
                    return memo;
                }
                let built = self.build_sentinel(key);
                inv.store(key, built.clone());
                built
            }
            None => self.build_sentinel(key),
        }
    }

    /// Generates `k` sentinels for one protected subgraph.
    ///
    /// Equivalent to [`SentinelFactory::generate_with`] without an
    /// inventory — every sentinel is built inline.
    pub fn generate(
        &self,
        protected: &Graph,
        k: usize,
        mode: SentinelMode,
        rng: &mut StdRng,
    ) -> Vec<Graph> {
        self.generate_with(protected, k, mode, rng, None)
    }

    /// Generates `k` sentinels for one protected subgraph, drawing warm
    /// members from `inventory` when one is supplied.
    ///
    /// The caller's `rng` only selects topology positions and variants
    /// (and feeds the perturb fallback); sentinel content comes from
    /// [`SentinelFactory::sentinel`]. The stream is consumed identically
    /// whether or not an inventory is present, so warm and inline runs of
    /// the same stream return byte-identical sentinels in the same order.
    pub fn generate_with(
        &self,
        protected: &Graph,
        k: usize,
        mode: SentinelMode,
        rng: &mut StdRng,
        inventory: Option<&SentinelInventory>,
    ) -> Vec<Graph> {
        match mode {
            SentinelMode::Perturb => perturb_many(protected, PerturbConfig::default(), k, rng),
            SentinelMode::Generative => self.generate_generative(protected, k, rng, inventory),
        }
    }

    fn generate_generative(
        &self,
        protected: &Graph,
        k: usize,
        rng: &mut StdRng,
        inventory: Option<&SentinelInventory>,
    ) -> Vec<Graph> {
        let regime = detect_regime(protected);
        let topo = UGraph::from_graph(protected);
        let mut out: Vec<Graph> = Vec::with_capacity(k);
        let mut rounds = 0usize;
        while out.len() < k && rounds < 8 {
            rounds += 1;
            let want = (k - out.len()).max(1) * 2;
            let positions = self
                .sampler
                .sample_similar_indices(&topo, self.beta, want, rng);
            for pos in positions {
                if out.len() >= k {
                    break;
                }
                let variant = rng.gen_range(0..self.variants) as u32;
                let key = SentinelKey::new(pos as u32, regime, variant);
                if let Some(g) = self.sentinel(key, inventory) {
                    out.push(g);
                }
            }
        }
        // Population can fail on adversarial topologies; perturbation fills
        // the remainder so the bucket always holds exactly k sentinels.
        if out.len() < k {
            let missing = k - out.len();
            out.extend(perturb_many(
                protected,
                PerturbConfig::default(),
                missing,
                rng,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graphgen::GraphRnnConfig;
    use proteus_models::{build, ModelKind};

    fn quick_config() -> ProteusConfig {
        ProteusConfig {
            graphrnn: GraphRnnConfig {
                epochs: 3,
                max_nodes: 24,
                ..Default::default()
            },
            topology_pool: 40,
            ..Default::default()
        }
    }

    fn subgraph_of(kind: ModelKind) -> Graph {
        let g = build(kind);
        let a = partition_by_size(&g, 8, 4, 1);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        plan.pieces
            .iter()
            .map(|p| p.graph.clone())
            .max_by_key(|g| g.len())
            .expect("nonempty")
    }

    #[test]
    fn factory_generates_k_valid_sentinels() {
        let cfg = quick_config();
        let corpus: Vec<Graph> = [ModelKind::ResNet, ModelKind::MobileNet]
            .iter()
            .map(|&k| build(k))
            .collect();
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::GoogleNet);
        let mut rng = StdRng::seed_from_u64(5);
        let sentinels = factory.generate(&protected, 6, SentinelMode::Generative, &mut rng);
        assert_eq!(sentinels.len(), 6);
        for s in &sentinels {
            s.validate().unwrap();
        }
    }

    #[test]
    fn perturb_mode_produces_protected_like_sentinels() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::SEResNet);
        let mut rng = StdRng::seed_from_u64(6);
        let sentinels = factory.generate(&protected, 5, SentinelMode::Perturb, &mut rng);
        assert_eq!(sentinels.len(), 5);
        for s in &sentinels {
            s.validate().unwrap();
            // perturbations stay within a few nodes of the original
            let diff = (s.len() as i64 - protected.len() as i64).abs();
            assert!(
                diff <= 4,
                "perturbed size {} vs {}",
                s.len(),
                protected.len()
            );
        }
    }

    #[test]
    fn build_sentinel_is_pure() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let keys = factory.key_space();
        assert_eq!(
            keys.len(),
            factory.sampler().len() * 2 * cfg.sentinel_variants
        );
        let mut built = 0;
        for key in keys.iter().take(12) {
            let a = factory.build_sentinel(*key);
            let b = factory.build_sentinel(*key);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        proteus_graph::wire::encode_graph(&a),
                        proteus_graph::wire::encode_graph(&b),
                        "key {key:?} not pure"
                    );
                    built += 1;
                }
                (None, None) => {}
                other => panic!("key {key:?} flip-flopped: {other:?}"),
            }
        }
        assert!(built > 0, "no key in the prefix built a sentinel");
        // out-of-range topology index is a clean None
        assert!(factory
            .build_sentinel(SentinelKey::new(u32::MAX, Regime::Cnn, 0))
            .is_none());
    }

    #[test]
    fn inventory_draws_match_inline_generation() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::GoogleNet);
        let wire = |gs: &[Graph]| -> Vec<bytes::Bytes> {
            gs.iter().map(proteus_graph::wire::encode_graph).collect()
        };
        let inv = SentinelInventory::new(factory.key_space().len());
        let mut rng = StdRng::seed_from_u64(9);
        let warm = factory.generate_with(
            &protected,
            6,
            SentinelMode::Generative,
            &mut rng,
            Some(&inv),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let inline = factory.generate_with(&protected, 6, SentinelMode::Generative, &mut rng, None);
        assert_eq!(wire(&warm), wire(&inline), "warm vs inline diverged");
        // a replay of the same stream hits the memo and still matches
        let mut rng = StdRng::seed_from_u64(9);
        let again = factory.generate_with(
            &protected,
            6,
            SentinelMode::Generative,
            &mut rng,
            Some(&inv),
        );
        assert_eq!(wire(&again), wire(&inline));
        assert!(inv.stats().hits > 0, "replay never hit the inventory");
        // a disabled inventory is bypassed entirely
        inv.set_enabled(false);
        let before = inv.stats();
        let mut rng = StdRng::seed_from_u64(9);
        let bypassed = factory.generate_with(
            &protected,
            6,
            SentinelMode::Generative,
            &mut rng,
            Some(&inv),
        );
        assert_eq!(wire(&bypassed), wire(&inline));
        assert_eq!(inv.stats(), before, "disabled inventory was touched");
    }

    #[test]
    fn sentinels_are_diverse() {
        let cfg = quick_config();
        let corpus = vec![build(ModelKind::ResNet)];
        let factory = SentinelFactory::train(&cfg, &corpus);
        let protected = subgraph_of(ModelKind::ResNet);
        let mut rng = StdRng::seed_from_u64(7);
        let sentinels = factory.generate(&protected, 8, SentinelMode::Generative, &mut rng);
        let mut distinct = std::collections::HashSet::new();
        for s in &sentinels {
            let sig: Vec<_> = s.iter().map(|(_, n)| n.op.opcode()).collect();
            distinct.insert(format!("{sig:?}"));
        }
        assert!(
            distinct.len() >= 4,
            "only {} distinct sentinels",
            distinct.len()
        );
    }
}
