//! Operator population (paper §4.1.2 "Operator Population", Algorithm 2).
//!
//! Given a sentinel DAG topology, assign a DL operator (and consistent
//! hyper-parameters) to every node. The constraints — arity feasibility,
//! channel-flow agreement, spatial-rank agreement — are encoded as a
//! finite-domain CSP and enumerated with `proteus-smt` (the Z3 stand-in),
//! exactly mirroring the paper's `GENERATE RULESET` / `GETSOLUTION` /
//! `Rules ∧ ¬S` loop. Enumerated solutions are scored for semantic
//! consistency with the bigram model and filtered to the top percentile.

use crate::semantic::{top_percentile, BigramModel};
use proteus_graph::{
    Activation, BatchNormAttrs, ConvAttrs, GemmAttrs, Graph, LayerNormAttrs, NodeId, Op, OpCode,
    PoolAttrs,
};
use proteus_graphgen::Dag;
use proteus_smt::{Solver, VarId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Which operator family a sentinel draws from — matches the protected
/// subgraph so a CNN piece hides among CNN-looking sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Regime {
    /// Convolutional models: conv/norm/pool/activation operator families.
    #[default]
    Cnn,
    /// Transformer models: gemm/matmul/layernorm/gather operator families.
    Transformer,
}

/// Picks the regime whose signature operators dominate `graph`.
pub fn detect_regime(graph: &Graph) -> Regime {
    let mut cnn = 0usize;
    let mut tfm = 0usize;
    for (_, node) in graph.iter() {
        match node.op.opcode() {
            OpCode::Conv
            | OpCode::BatchNorm
            | OpCode::MaxPool
            | OpCode::AveragePool
            | OpCode::GlobalAveragePool => cnn += 1,
            OpCode::Gemm
            | OpCode::LayerNorm
            | OpCode::SkipLayerNorm
            | OpCode::MatMul
            | OpCode::MatMulT
            | OpCode::Gather
            | OpCode::Gelu => tfm += 1,
            _ => {}
        }
    }
    if tfm > cnn {
        Regime::Transformer
    } else {
        Regime::Cnn
    }
}

/// Tuning knobs of the population step.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Maximum solutions to enumerate per topology (Algorithm 2's
    /// `max_solns`).
    pub max_solutions: usize,
    /// Fraction of solutions kept after semantic scoring (Algorithm 2's
    /// `pct`).
    pub top_pct: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            max_solutions: 24,
            top_pct: 0.5,
        }
    }
}

const CNN_CHANNELS: [i64; 12] = [8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512];
const TFM_DIMS: [i64; 7] = [64, 128, 192, 256, 384, 512, 768];
const SEQ_LEN: i64 = 128;

/// CNN opcodes by arity class. Order matters only as a value-try order (it
/// is shuffled per node).
fn cnn_ops(in_degree: usize, is_primary_source: bool) -> Vec<OpCode> {
    match in_degree {
        0 if is_primary_source => vec![OpCode::Input],
        0 => vec![OpCode::Input, OpCode::Constant],
        1 => vec![
            OpCode::Conv,
            OpCode::BatchNorm,
            OpCode::Relu,
            OpCode::Relu6,
            OpCode::Sigmoid,
            OpCode::HardSigmoid,
            OpCode::Tanh,
            OpCode::MaxPool,
            OpCode::AveragePool,
            OpCode::GlobalAveragePool,
            OpCode::Softmax,
            OpCode::Dropout,
        ],
        2 => vec![OpCode::Add, OpCode::Mul, OpCode::Concat],
        _ => vec![OpCode::Concat],
    }
}

/// Transformer opcodes by arity class.
fn tfm_ops(in_degree: usize, is_primary_source: bool) -> Vec<OpCode> {
    match in_degree {
        0 if is_primary_source => vec![OpCode::Input],
        0 => vec![OpCode::Input, OpCode::Constant],
        1 => vec![
            OpCode::Gemm,
            OpCode::LayerNorm,
            OpCode::Relu,
            OpCode::Gelu,
            OpCode::Tanh,
            OpCode::Sigmoid,
            OpCode::Softmax,
            OpCode::Dropout,
        ],
        2 => vec![
            OpCode::Add,
            OpCode::Mul,
            OpCode::MatMulT,
            OpCode::MatMul,
            OpCode::Concat,
        ],
        _ => vec![OpCode::Concat],
    }
}

/// One fully-populated solution: opcode + channel width + spatial flag per
/// node.
#[derive(Debug, Clone)]
struct Assignment {
    opcodes: Vec<OpCode>,
    channels: Vec<i64>,
    spatial: Vec<i64>,
}

/// Builds the rule set (paper's `GENERATE RULESET`) and enumerates up to
/// `max_solutions` syntactically valid assignments.
fn enumerate_assignments(
    dag: &Dag,
    regime: Regime,
    cfg: &PopulationConfig,
    rng: &mut StdRng,
) -> Vec<Assignment> {
    let n = dag.len();
    if n == 0 {
        return Vec::new();
    }
    let preds = dag.preds();
    let topo = dag.topo_order();
    let primary = *topo.first().expect("nonempty");
    let mut solver = Solver::new();
    // bound worst-case search on adversarial topologies; typical topologies
    // enumerate their solutions in far fewer nodes, and hard cases are
    // cheaper to replace (resample a topology) than to solve exhaustively
    solver.set_node_budget(20_000);

    let mut op_vars: Vec<VarId> = Vec::with_capacity(n);
    let mut ch_vars: Vec<VarId> = Vec::with_capacity(n);
    let mut sp_vars: Vec<VarId> = Vec::with_capacity(n);
    for (i, pred) in preds.iter().enumerate().take(n) {
        let degree = pred.len();
        let mut ops = match regime {
            Regime::Cnn => cnn_ops(degree, i == primary),
            Regime::Transformer => tfm_ops(degree, i == primary),
        };
        ops.shuffle(rng);
        let dom: Vec<i64> = ops.iter().map(|c| c.index() as i64).collect();
        op_vars.push(solver.add_var(dom));
        let mut channels: Vec<i64> = match regime {
            Regime::Cnn => CNN_CHANNELS.to_vec(),
            Regime::Transformer => TFM_DIMS.to_vec(),
        };
        channels.shuffle(rng);
        ch_vars.push(solver.add_var(channels));
        sp_vars.push(solver.add_var(if regime == Regime::Cnn {
            vec![1, 0]
        } else {
            vec![1]
        }));
    }

    let code = |v: i64| OpCode::from_index(v as usize);
    for i in 0..n {
        let ps = preds[i].clone();
        match ps.len() {
            0 => {}
            1 => {
                let p = ps[0];
                // channel + spatial flow for unary operators
                solver.predicate(
                    vec![op_vars[i], ch_vars[i], ch_vars[p], sp_vars[i], sp_vars[p]],
                    "unary-flow",
                    move |v| {
                        let (op, ci, cp, si, sp) = (code(v[0]), v[1], v[2], v[3], v[4]);
                        match op {
                            OpCode::Conv | OpCode::Gemm => si == sp, // ci free
                            OpCode::GlobalAveragePool => ci == cp && si == 0,
                            OpCode::MatMulT
                            | OpCode::MatMul
                            | OpCode::Concat
                            | OpCode::Add
                            | OpCode::Mul => false, // wrong arity
                            _ => ci == cp && si == sp,
                        }
                    },
                );
            }
            2 => {
                let (p1, p2) = (ps[0], ps[1]);
                solver.predicate(
                    vec![
                        op_vars[i],
                        ch_vars[i],
                        ch_vars[p1],
                        ch_vars[p2],
                        sp_vars[i],
                        sp_vars[p1],
                        sp_vars[p2],
                    ],
                    "binary-flow",
                    move |v| {
                        let (op, ci, c1, c2) = (code(v[0]), v[1], v[2], v[3]);
                        let (si, s1, s2) = (v[4], v[5], v[6]);
                        match op {
                            OpCode::Add | OpCode::Mul => ci == c1 && c1 == c2 && si == s1.max(s2),
                            OpCode::Concat => c1 == c2 && ci == c1 + c2 && s1 == s2 && si == s1,
                            OpCode::MatMulT => {
                                // q·kᵀ: equal model dims, output dim = seq
                                c1 == c2 && ci == SEQ_LEN && si == 1 && s1 == 1 && s2 == 1
                            }
                            OpCode::MatMul => {
                                // probs[seq] x v[d] -> [d]
                                c1 == SEQ_LEN && ci == c2 && si == 1 && s1 == 1 && s2 == 1
                            }
                            _ => false,
                        }
                    },
                );
            }
            _ => {
                // Concat of m >= 3 equal-width inputs.
                let mut vars = vec![op_vars[i], ch_vars[i]];
                vars.extend(ps.iter().map(|&p| ch_vars[p]));
                vars.push(sp_vars[i]);
                vars.extend(ps.iter().map(|&p| sp_vars[p]));
                let m = ps.len();
                solver.predicate(vars, "concat-flow", move |v| {
                    let op = code(v[0]);
                    if op != OpCode::Concat {
                        return false;
                    }
                    let ci = v[1];
                    let chans = &v[2..2 + m];
                    let si = v[2 + m];
                    let sps = &v[3 + m..];
                    chans.iter().all(|&c| c == chans[0])
                        && ci == chans.iter().sum::<i64>()
                        && sps.iter().all(|&s| s == sps[0])
                        && si == sps[0]
                });
            }
        }
    }

    let raw = solver.solve_up_to(cfg.max_solutions);
    raw.into_iter()
        .map(|sol| Assignment {
            opcodes: op_vars.iter().map(|v| code(sol[v.index()])).collect(),
            channels: ch_vars.iter().map(|v| sol[v.index()]).collect(),
            spatial: sp_vars.iter().map(|v| sol[v.index()]).collect(),
        })
        .collect()
}

/// Materializes a populated assignment into a computational graph.
fn build_graph(dag: &Dag, regime: Regime, assignment: &Assignment, rng: &mut StdRng) -> Graph {
    let n = dag.len();
    let preds = dag.preds();
    let succs = dag.succs();
    let topo = dag.topo_order();
    let mut g = Graph::new("sentinel");
    let mut ids: Vec<Option<NodeId>> = vec![None; n];
    for &i in &topo {
        let codev = assignment.opcodes[i];
        let c = assignment.channels[i] as usize;
        let sp = assignment.spatial[i];
        let inputs: Vec<NodeId> = preds[i]
            .iter()
            .map(|&p| ids[p].expect("topo order"))
            .collect();
        let pred_c = preds[i]
            .first()
            .map(|&p| assignment.channels[p] as usize)
            .unwrap_or(c);
        let shape_of = |c: usize, sp: i64| -> proteus_graph::Shape {
            match regime {
                Regime::Cnn => {
                    if sp == 1 {
                        [1, c, 16, 16].into()
                    } else {
                        [1, c, 1, 1].into()
                    }
                }
                Regime::Transformer => [1, SEQ_LEN as usize, c].into(),
            }
        };
        let op = match codev {
            OpCode::Input => Op::Input {
                shape: shape_of(c, sp),
            },
            OpCode::Constant => Op::Constant {
                shape: shape_of(c, sp),
            },
            OpCode::Conv => {
                let kernel = *[1usize, 3, 5].choose(rng).expect("nonempty");
                Op::Conv(
                    ConvAttrs::new(pred_c, c, kernel)
                        .padding(kernel / 2)
                        .bias(rng.gen_bool(0.5)),
                )
            }
            OpCode::Gemm => Op::Gemm(GemmAttrs::new(pred_c, c)),
            OpCode::BatchNorm => Op::BatchNorm(BatchNormAttrs { channels: c }),
            OpCode::LayerNorm => Op::LayerNorm(LayerNormAttrs { dim: c }),
            OpCode::Relu => Op::Activation(Activation::Relu),
            OpCode::Relu6 => Op::Activation(Activation::Relu6),
            OpCode::Sigmoid => Op::Activation(Activation::Sigmoid),
            OpCode::HardSigmoid => Op::Activation(Activation::HardSigmoid),
            OpCode::Tanh => Op::Activation(Activation::Tanh),
            OpCode::Gelu => Op::Activation(Activation::Gelu),
            OpCode::Silu => Op::Activation(Activation::Silu),
            OpCode::Softmax => Op::Softmax {
                axis: if regime == Regime::Cnn { 1 } else { -1 },
            },
            OpCode::Dropout => Op::Dropout {
                p: rng.gen_range(10..=50),
            },
            OpCode::MaxPool => Op::MaxPool(PoolAttrs::new(3, 1, 1)),
            OpCode::AveragePool => Op::AveragePool(PoolAttrs::new(3, 1, 1)),
            OpCode::GlobalAveragePool => Op::GlobalAveragePool,
            OpCode::Add => Op::Add,
            OpCode::Mul => Op::Mul,
            OpCode::Concat => Op::Concat {
                axis: if regime == Regime::Cnn { 1 } else { 2 },
            },
            OpCode::MatMul => Op::MatMul,
            OpCode::MatMulT => Op::MatMulT,
            other => unreachable!("opcode {other:?} not in population vocabulary"),
        };
        ids[i] = Some(g.add(op, inputs));
    }
    // graph outputs: DAG sinks
    let outs: Vec<NodeId> = (0..n)
        .filter(|&i| succs[i].is_empty())
        .map(|i| ids[i].expect("assigned"))
        .collect();
    g.set_outputs(outs);
    g
}

/// Algorithm 2 end to end: enumerate, score, filter, sample one populated
/// sentinel graph. Returns `None` when the topology admits no valid
/// assignment (the caller then tries another topology).
pub fn populate(
    dag: &Dag,
    regime: Regime,
    bigram: &BigramModel,
    cfg: &PopulationConfig,
    rng: &mut StdRng,
) -> Option<Graph> {
    let assignments = enumerate_assignments(dag, regime, cfg, rng);
    if assignments.is_empty() {
        return None;
    }
    let scored: Vec<(Assignment, f64)> = crate::phase::time_semantic(|| {
        assignments
            .into_iter()
            .map(|a| {
                let score = bigram.assignment_log_likelihood(dag.edges(), &a.opcodes);
                (a, score)
            })
            .collect()
    });
    let kept = top_percentile(scored, cfg.top_pct);
    let choice = kept.choose(rng)?;
    let g = build_graph(dag, regime, choice, rng);
    // Defensive: population must produce a structurally valid graph.
    debug_assert!(g.validate().is_ok(), "populated sentinel invalid: {g:#?}");
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;
    use rand::SeedableRng;

    fn chain_dag(n: usize) -> Dag {
        Dag::new(n, (1..n).map(|i| (i - 1, i)).collect())
    }

    fn diamond_dag() -> Dag {
        Dag::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn bigram() -> BigramModel {
        let corpus: Vec<Graph> = proteus_models::zoo().into_iter().map(|(_, g)| g).collect();
        let refs: Vec<&Graph> = corpus.iter().collect();
        BigramModel::fit(&refs, 0.1)
    }

    #[test]
    fn populated_chains_are_valid_and_shaped() {
        let model = bigram();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PopulationConfig::default();
        for n in [3usize, 5, 8, 12] {
            let dag = chain_dag(n);
            for regime in [Regime::Cnn, Regime::Transformer] {
                let g = populate(&dag, regime, &model, &cfg, &mut rng)
                    .unwrap_or_else(|| panic!("no assignment for n={n} {regime:?}"));
                g.validate().unwrap();
                infer_shapes(&g).unwrap_or_else(|e| panic!("shapes n={n} {regime:?}: {e}\n{g:#?}"));
                assert_eq!(g.len(), n);
            }
        }
    }

    #[test]
    fn populated_diamond_handles_binary_ops() {
        let model = bigram();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PopulationConfig::default();
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = populate(&diamond_dag(), Regime::Cnn, &model, &cfg, &mut r).unwrap();
            g.validate().unwrap();
            infer_shapes(&g).unwrap();
            let _ = &mut rng;
        }
    }

    #[test]
    fn high_fanin_becomes_concat() {
        let model = bigram();
        let mut rng = StdRng::seed_from_u64(3);
        let dag = Dag::new(5, vec![(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]);
        let g = populate(
            &dag,
            Regime::Cnn,
            &model,
            &PopulationConfig::default(),
            &mut rng,
        )
        .expect("satisfiable");
        infer_shapes(&g).unwrap();
        let concats = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .count();
        assert!(concats >= 1);
    }

    #[test]
    fn regime_detection() {
        let cnn = proteus_models::build(proteus_models::ModelKind::ResNet);
        let tfm = proteus_models::build(proteus_models::ModelKind::Bert);
        assert_eq!(detect_regime(&cnn), Regime::Cnn);
        assert_eq!(detect_regime(&tfm), Regime::Transformer);
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let model = bigram();
        let cfg = PopulationConfig::default();
        let dag = chain_dag(8);
        let mut a_rng = StdRng::seed_from_u64(10);
        let mut b_rng = StdRng::seed_from_u64(11);
        let a = populate(&dag, Regime::Cnn, &model, &cfg, &mut a_rng).unwrap();
        let b = populate(&dag, Regime::Cnn, &model, &cfg, &mut b_rng).unwrap();
        let ops_a: Vec<_> = a.iter().map(|(_, n)| n.op.opcode()).collect();
        let ops_b: Vec<_> = b.iter().map(|(_, n)| n.op.opcode()).collect();
        assert_ne!(ops_a, ops_b, "seeds should diversify sentinels");
    }

    #[test]
    fn semantic_filter_prefers_plausible_sequences() {
        // with a corpus of conv->bn->relu models, populated chains should
        // frequently contain that motif rather than e.g. softmax chains
        let model = bigram();
        let cfg = PopulationConfig {
            max_solutions: 32,
            top_pct: 0.25,
        };
        let mut softmax_chains = 0;
        let mut total = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = populate(&chain_dag(6), Regime::Cnn, &model, &cfg, &mut rng).unwrap();
            let codes: Vec<_> = g.iter().map(|(_, n)| n.op.opcode()).collect();
            let softmaxes = codes.iter().filter(|&&c| c == OpCode::Softmax).count();
            if softmaxes >= 3 {
                softmax_chains += 1;
            }
            total += 1;
        }
        assert!(
            softmax_chains * 4 < total,
            "{softmax_chains}/{total} sentinels are softmax-heavy"
        );
    }
}
