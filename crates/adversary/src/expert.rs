//! A rule-based "expert reviewer" (stand-in for the paper's §5.3.3 / A.8
//! user survey).
//!
//! The paper asked 13 ML researchers to label 20 subgraphs as real or
//! Proteus-generated; accuracy was 52% (chance). Human experts judge by
//! visual pattern-matching on operator sequences; this module codifies
//! those patterns explicitly so the survey's metric can be measured
//! mechanically: each rule fires on an "implausible" construction, and the
//! expert calls a graph fake when enough rules fire.

use proteus_graph::{Graph, Op, OpCode};

/// One suspicion rule with a human-readable name.
#[derive(Debug, Clone, Copy)]
pub struct Suspicion {
    pub name: &'static str,
    pub weight: f64,
}

/// The codified expert: a weighted bag of visual-inspection heuristics.
#[derive(Debug, Clone)]
pub struct ExpertReviewer {
    /// Total suspicion score at/above which the expert answers "fake".
    pub threshold: f64,
}

impl Default for ExpertReviewer {
    fn default() -> Self {
        ExpertReviewer { threshold: 1.0 }
    }
}

impl ExpertReviewer {
    /// Scores a graph, returning the fired rules.
    pub fn inspect(&self, g: &Graph) -> Vec<Suspicion> {
        let mut fired = Vec::new();
        let succ = g.successors();
        let mut double_act = 0usize;
        let mut bn_not_after_conv = 0usize;
        let mut softmax_feeds_conv = 0usize;
        let mut same_operand_binop = 0usize;
        let mut conv_count = 0usize;
        let mut act_after_convlike = 0usize;
        let is_act = |c: OpCode| {
            matches!(
                c,
                OpCode::Relu
                    | OpCode::Relu6
                    | OpCode::Sigmoid
                    | OpCode::HardSigmoid
                    | OpCode::Tanh
                    | OpCode::Gelu
                    | OpCode::Silu
            )
        };
        for (id, node) in g.iter() {
            let code = node.op.opcode();
            if is_act(code) {
                for s in &succ[&id] {
                    if is_act(g.node(*s).expect("live").op.opcode()) {
                        double_act += 1;
                    }
                }
            }
            if code == OpCode::BatchNorm {
                let prev = g.node(node.inputs[0]).expect("live").op.opcode();
                if !matches!(
                    prev,
                    OpCode::Conv
                        | OpCode::Input
                        | OpCode::MaxPool
                        | OpCode::AveragePool
                        | OpCode::Concat
                        | OpCode::Add
                ) {
                    bn_not_after_conv += 1;
                }
            }
            if code == OpCode::Softmax {
                for s in &succ[&id] {
                    if g.node(*s).expect("live").op.opcode() == OpCode::Conv {
                        softmax_feeds_conv += 1;
                    }
                }
            }
            if matches!(node.op, Op::Add | Op::Mul | Op::Sub | Op::Div)
                && node.inputs.len() == 2
                && node.inputs[0] == node.inputs[1]
            {
                same_operand_binop += 1;
            }
            if matches!(code, OpCode::Conv | OpCode::Gemm) {
                conv_count += 1;
                let feeds_something_reasonable = succ[&id].iter().any(|s| {
                    let c = g.node(*s).expect("live").op.opcode();
                    is_act(c)
                        || matches!(
                            c,
                            OpCode::BatchNorm
                                | OpCode::Add
                                | OpCode::AddAct
                                | OpCode::Concat
                                | OpCode::MaxPool
                                | OpCode::AveragePool
                                | OpCode::GlobalAveragePool
                                | OpCode::Conv
                                | OpCode::Gemm
                                | OpCode::LayerNorm
                                | OpCode::SkipLayerNorm
                                | OpCode::Mul
                                | OpCode::Softmax
                                | OpCode::Flatten
                                | OpCode::Reshape
                                | OpCode::ReduceMean
                        )
                        || succ[&id].is_empty()
                });
                if feeds_something_reasonable {
                    act_after_convlike += 1;
                }
            }
        }
        if double_act >= 2 {
            fired.push(Suspicion {
                name: "stacked activations",
                weight: 0.6,
            });
        }
        if bn_not_after_conv >= 1 {
            fired.push(Suspicion {
                name: "batchnorm in odd position",
                weight: 0.5,
            });
        }
        if softmax_feeds_conv >= 1 {
            fired.push(Suspicion {
                name: "softmax feeding conv",
                weight: 0.8,
            });
        }
        if same_operand_binop >= 1 {
            fired.push(Suspicion {
                name: "x op x binary node",
                weight: 0.5,
            });
        }
        if conv_count >= 2 && act_after_convlike * 2 < conv_count {
            fired.push(Suspicion {
                name: "convs without consumers pattern",
                weight: 0.6,
            });
        }
        fired
    }

    /// Total suspicion score.
    pub fn score(&self, g: &Graph) -> f64 {
        self.inspect(g).iter().map(|s| s.weight).sum()
    }

    /// The expert's verdict: true = "this looks fake".
    pub fn says_fake(&self, g: &Graph) -> bool {
        self.score(g) >= self.threshold
    }

    /// Survey accuracy over labelled graphs `(graph, is_sentinel)`.
    pub fn accuracy(&self, labelled: &[(Graph, bool)]) -> f64 {
        if labelled.is_empty() {
            return 0.0;
        }
        let correct = labelled
            .iter()
            .filter(|(g, label)| self.says_fake(g) == *label)
            .count();
        correct as f64 / labelled.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};

    #[test]
    fn clean_conv_block_passes() {
        let mut g = Graph::new("clean");
        let x = g.input([1, 8, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [r]);
        g.set_outputs([c2]);
        let expert = ExpertReviewer::default();
        assert!(!expert.says_fake(&g), "fired: {:?}", expert.inspect(&g));
    }

    #[test]
    fn opcode_soup_flagged() {
        let mut g = Graph::new("soup");
        let x = g.input([1, 8, 8, 8]);
        let s1 = g.add(Op::Activation(Activation::Sigmoid), [x]);
        let s2 = g.add(Op::Activation(Activation::Tanh), [s1]);
        let s3 = g.add(Op::Activation(Activation::Relu), [s2]);
        let sm = g.add(Op::Softmax { axis: 1 }, [s3]);
        let c = g.add(Op::Conv(ConvAttrs::new(8, 8, 1)), [sm]);
        let m = g.add(Op::Mul, [c, c]);
        g.set_outputs([m]);
        let expert = ExpertReviewer::default();
        assert!(expert.says_fake(&g), "score {}", expert.score(&g));
    }

    #[test]
    fn real_model_subgraphs_pass_mostly() {
        use proteus_graph::TensorMap;
        use proteus_models::{build, ModelKind};
        use proteus_partition::{partition_by_size, PartitionPlan};
        let expert = ExpertReviewer::default();
        let g = build(ModelKind::ResNet);
        let a = partition_by_size(&g, 10, 8, 3);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        let flagged = plan
            .pieces
            .iter()
            .filter(|p| expert.says_fake(&p.graph))
            .count();
        assert!(
            flagged * 4 <= plan.pieces.len(),
            "{}/{} real pieces flagged",
            flagged,
            plan.pieces.len()
        );
    }
}
