//! The learned structural attacker — the escalated adversary of the
//! scenario-diversity battery.
//!
//! Where [`crate::SageClassifier`] mirrors the paper's Figure 7 GNN, this
//! attacker is given strictly more signal: the same message-passing trunk
//! over [`GraphFeatures`], but a two-branch readout (mean *and* max row
//! pooling, so single anomalous nodes survive the pooling) concatenated
//! with the whole-graph [`structural_summary`] vector — degree statistics,
//! branching/merge fractions, skip-edge density, critical depth, and a
//! coarse opcode-class histogram. The summary channels are exactly the
//! aggregate statistics the provenance-sanitization literature flags as
//! residual leakage after structure hiding, so this model upper-bounds
//! what a statistics-aware GNN adversary extracts from a bucket.

use crate::features::{structural_summary, GraphFeatures, NODE_FEATURES, SUMMARY_FEATURES};
use crate::sage::Example;
use proteus_graph::Graph;
use proteus_nn::{Adam, Linear, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the structural attacker.
#[derive(Debug, Clone, Copy)]
pub struct StructuralConfig {
    /// Opcode-embedding width.
    pub embed: usize,
    /// Hidden width of the message-passing layers.
    pub hidden: usize,
    /// Hidden width of the post-readout MLP.
    pub head_hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size (graphs per update).
    pub batch: usize,
}

impl Default for StructuralConfig {
    fn default() -> Self {
        StructuralConfig {
            embed: 24,
            hidden: 24,
            head_hidden: 32,
            epochs: 8,
            lr: 0.01,
            batch: 8,
        }
    }
}

/// One message-passing layer, as in the Sage classifier:
/// `h' = relu([h | mean_neigh(h)] W + b)`.
#[derive(Debug, Clone)]
struct MpLayer {
    lin: Linear,
}

impl MpLayer {
    fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> MpLayer {
        MpLayer {
            lin: Linear::new(name, 2 * in_dim, out_dim, store, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, h: Var, agg: Var) -> Var {
        let neigh = tape.matmul(agg, h);
        let cat = tape.concat_cols(h, neigh);
        let out = self.lin.forward(tape, store, cat);
        tape.relu(out)
    }
}

/// The learned structural attacker.
#[derive(Debug)]
pub struct StructuralAttacker {
    cfg: StructuralConfig,
    store: ParamStore,
    embed: Linear,
    mp1: MpLayer,
    mp2: MpLayer,
    fc1: Linear,
    head: Linear,
}

/// A featurized example for the structural attacker: the Sage features
/// plus the precomputed summary vector.
#[derive(Debug, Clone)]
pub struct StructuralExample {
    /// Node features and aggregation matrix.
    pub features: GraphFeatures,
    /// Whole-graph structural summary.
    pub summary: Vec<f32>,
    /// `1.0` for sentinel, `0.0` for real.
    pub label: f32,
}

impl StructuralExample {
    /// Featurizes a graph.
    pub fn new(graph: &Graph, is_sentinel: bool) -> StructuralExample {
        StructuralExample {
            features: GraphFeatures::of(graph),
            summary: structural_summary(graph),
            label: if is_sentinel { 1.0 } else { 0.0 },
        }
    }

    /// Upgrades a Sage [`Example`] (refeaturizing the summary is not
    /// possible from features alone, so this exists only for labelled
    /// graphs — see [`StructuralExample::new`]).
    pub fn from_graph_example(graph: &Graph, ex: &Example) -> StructuralExample {
        StructuralExample {
            features: ex.features.clone(),
            summary: structural_summary(graph),
            label: ex.label,
        }
    }
}

impl StructuralAttacker {
    /// Initializes an untrained attacker.
    pub fn new(cfg: StructuralConfig, seed: u64) -> StructuralAttacker {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let embed = Linear::new("s_embed", NODE_FEATURES, cfg.embed, &mut store, &mut rng);
        let mp1 = MpLayer::new("s_mp1", cfg.embed, cfg.hidden, &mut store, &mut rng);
        let mp2 = MpLayer::new("s_mp2", cfg.hidden, cfg.hidden, &mut store, &mut rng);
        // readout = [mean | max | summary]
        let fc1 = Linear::new(
            "s_fc1",
            2 * cfg.hidden + SUMMARY_FEATURES,
            cfg.head_hidden,
            &mut store,
            &mut rng,
        );
        let head = Linear::new("s_head", cfg.head_hidden, 1, &mut store, &mut rng);
        StructuralAttacker {
            cfg,
            store,
            embed,
            mp1,
            mp2,
            fc1,
            head,
        }
    }

    fn logit(&self, tape: &mut Tape, feats: &GraphFeatures, summary: &[f32]) -> Var {
        let x = tape.constant(feats.nodes.clone());
        let agg = tape.constant(feats.agg.clone());
        let h = self.embed.forward(tape, &self.store, x);
        let h = tape.relu(h);
        let h = self.mp1.forward(tape, &self.store, h, agg);
        let h = self.mp2.forward(tape, &self.store, h, agg);
        let mean = tape.mean_rows(h);
        let max = tape.max_rows(h);
        let pooled = tape.concat_cols(mean, max);
        let s = tape.constant(Matrix::new(1, summary.len(), summary.to_vec()));
        let z = tape.concat_cols(pooled, s);
        let z = self.fc1.forward(tape, &self.store, z);
        let z = tape.relu(z);
        self.head.forward(tape, &self.store, z)
    }

    /// Probability that `graph` is a sentinel.
    pub fn confidence(&self, graph: &Graph) -> f64 {
        self.confidence_parts(&GraphFeatures::of(graph), &structural_summary(graph))
    }

    /// Probability from precomputed features.
    pub fn confidence_parts(&self, feats: &GraphFeatures, summary: &[f32]) -> f64 {
        let mut tape = Tape::new();
        let logit = self.logit(&mut tape, feats, summary);
        let v = tape.value(logit).get(0, 0) as f64;
        1.0 / (1.0 + (-v).exp())
    }

    /// Trains on labelled examples; returns per-epoch mean losses.
    pub fn train(&mut self, examples: &[StructuralExample], seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adam = Adam::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch.max(1)) {
                let mut tape = Tape::new();
                let mut total: Option<Var> = None;
                for &i in chunk {
                    let ex = &examples[i];
                    if ex.features.is_empty() {
                        continue;
                    }
                    let logit = self.logit(&mut tape, &ex.features, &ex.summary);
                    let t = tape.constant(Matrix::new(1, 1, vec![ex.label]));
                    let loss = tape.bce_with_logits(logit, t);
                    total = Some(match total {
                        None => loss,
                        Some(acc) => tape.add(acc, loss),
                    });
                }
                let Some(loss) = total else { continue };
                let scaled = tape.scale(loss, 1.0 / chunk.len() as f32);
                epoch_loss += tape.value(scaled).get(0, 0);
                batches += 1;
                let grads = tape.backward(scaled);
                adam.step(&mut self.store, &grads);
            }
            history.push(if batches == 0 {
                0.0
            } else {
                epoch_loss / batches as f32
            });
        }
        history
    }

    /// Classification accuracy at threshold 0.5 over examples.
    pub fn accuracy(&self, examples: &[StructuralExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|ex| {
                let p = self.confidence_parts(&ex.features, &ex.summary);
                (p >= 0.5) == (ex.label >= 0.5)
            })
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};
    use rand::Rng;

    fn toy_dataset(n: usize, seed: u64) -> Vec<StructuralExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..n {
            let len = rng.gen_range(4..9);
            let mut g = Graph::new("toy");
            let mut prev = g.input([1, 8, 8, 8]);
            if i % 2 == 0 {
                for j in 0..len {
                    prev = if j % 2 == 0 {
                        g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [prev])
                    } else {
                        g.add(Op::Activation(Activation::Relu), [prev])
                    };
                }
                g.set_outputs([prev]);
                out.push(StructuralExample::new(&g, false));
            } else {
                for _ in 0..len {
                    let op = match rng.gen_range(0..4) {
                        0 => Op::Softmax { axis: -1 },
                        1 => Op::Activation(Activation::Sigmoid),
                        2 => Op::GlobalAveragePool,
                        _ => Op::Flatten,
                    };
                    prev = g.add(op, [prev]);
                }
                g.set_outputs([prev]);
                out.push(StructuralExample::new(&g, true));
            }
        }
        out
    }

    #[test]
    fn learns_to_separate_obvious_classes() {
        let train = toy_dataset(60, 1);
        let test = toy_dataset(30, 2);
        let mut clf = StructuralAttacker::new(
            StructuralConfig {
                epochs: 10,
                ..Default::default()
            },
            7,
        );
        let history = clf.train(&train, 3);
        assert!(history.last().unwrap() < history.first().unwrap());
        let acc = clf.accuracy(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn confidence_in_unit_interval() {
        let clf = StructuralAttacker::new(StructuralConfig::default(), 0);
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        let c = clf.confidence(&g);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn training_is_seed_deterministic() {
        let train = toy_dataset(30, 9);
        let mut a = StructuralAttacker::new(StructuralConfig::default(), 5);
        let mut b = StructuralAttacker::new(StructuralConfig::default(), 5);
        let ha = a.train(&train, 11);
        let hb = b.train(&train, 11);
        assert_eq!(ha, hb);
    }
}
