//! Adversaries against the Proteus obfuscation (paper §5.3).
//!
//! Three attacker families, mirroring the paper's evaluation:
//!
//! - [`SageClassifier`] — the learning-based adversary: a GraphSAGE binary
//!   classifier over opcode/degree features (Figure 7), attacked against
//!   buckets with the pessimistic α=1 threshold and search-space accounting
//!   of Appendix A.6 ([`attack_buckets`]).
//! - [`StatsAdversary`] — the heuristic adversary using graph-statistic
//!   likelihoods (§5.3.1).
//! - [`ExpertReviewer`] — a codified version of the §5.3.3 expert survey's
//!   visual pattern-matching.
//!
//! Plus one escalation beyond the paper: [`StructuralAttacker`], a GNN
//! classifier that additionally sees a whole-graph [`structural_summary`]
//! (degree/branching statistics, skip-edge density, opcode-class
//! histogram) through a mean+max readout — with [`measure_leakage`]
//! reporting per-family structural-leakage metrics.
//!
//! ```
//! use proteus_adversary::{SageClassifier, SageConfig, Example};
//! use proteus_graph::{Graph, Op, Activation};
//!
//! let mut g = Graph::new("x");
//! let i = g.input([1, 8]);
//! let r = g.add(Op::Activation(Activation::Relu), [i]);
//! g.set_outputs([r]);
//!
//! let clf = SageClassifier::new(SageConfig::default(), 0);
//! let confidence = clf.confidence(&g); // untrained: ~uninformative
//! assert!((0.0..=1.0).contains(&confidence));
//! ```

pub mod attack;
pub mod expert;
pub mod features;
pub mod heuristic;
pub mod leakage;
pub mod learned;
pub mod sage;

pub use attack::{
    analytic_log10_candidates, attack_buckets, AttackReport, BucketClassifier, LabelledBucket,
};
pub use expert::{ExpertReviewer, Suspicion};
pub use features::{structural_summary, GraphFeatures, NODE_FEATURES, SUMMARY_FEATURES};
pub use heuristic::StatsAdversary;
pub use leakage::{measure_leakage, LeakageReport};
pub use learned::{StructuralAttacker, StructuralConfig, StructuralExample};
pub use sage::{Example, SageClassifier, SageConfig};
