//! Statistics-based (heuristic) adversary (paper §5.3.1).
//!
//! Fits a Gaussian model to the four graph statistics of known-real
//! subgraphs and classifies candidates by likelihood. The paper's claim —
//! verified by experiment E3 — is that Proteus sentinels match the real
//! statistic distributions closely enough that this adversary is no better
//! than chance.

use proteus_graph::{Graph, GraphStats};

/// Per-dimension Gaussian likelihood model over [`GraphStats`].
#[derive(Debug, Clone)]
pub struct StatsAdversary {
    mean: [f64; 4],
    std: [f64; 4],
    /// Log-likelihood threshold below which a graph is called a sentinel.
    pub threshold: f64,
}

impl StatsAdversary {
    /// Fits the model on known-real subgraphs and calibrates the threshold
    /// to the `q`-quantile of their own log-likelihoods (so `q` of real
    /// graphs would be misjudged — the adversary picks a small `q`).
    pub fn fit(reals: &[Graph], q: f64) -> StatsAdversary {
        let feats: Vec<[f64; 4]> = reals.iter().map(|g| GraphStats::of(g).to_vec()).collect();
        let n = feats.len().max(1) as f64;
        let mut mean = [0.0; 4];
        let mut std = [0.0; 4];
        for d in 0..4 {
            mean[d] = feats.iter().map(|f| f[d]).sum::<f64>() / n;
            let var = feats.iter().map(|f| (f[d] - mean[d]).powi(2)).sum::<f64>() / n;
            std[d] = var.sqrt().max(1e-3);
        }
        let mut model = StatsAdversary {
            mean,
            std,
            threshold: f64::NEG_INFINITY,
        };
        let mut lls: Vec<f64> = feats.iter().map(|f| model.log_likelihood_vec(f)).collect();
        lls.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let idx = ((lls.len() as f64 * q) as usize).min(lls.len().saturating_sub(1));
        model.threshold = lls.get(idx).copied().unwrap_or(f64::NEG_INFINITY);
        model
    }

    fn log_likelihood_vec(&self, f: &[f64; 4]) -> f64 {
        (0..4)
            .map(|d| {
                let z = (f[d] - self.mean[d]) / self.std[d];
                -0.5 * z * z - self.std[d].ln()
            })
            .sum()
    }

    /// Log-likelihood of a graph under the real-subgraph model.
    pub fn log_likelihood(&self, g: &Graph) -> f64 {
        self.log_likelihood_vec(&GraphStats::of(g).to_vec())
    }

    /// True when the adversary calls the graph a sentinel.
    pub fn is_sentinel(&self, g: &Graph) -> bool {
        self.log_likelihood(g) < self.threshold
    }

    /// Accuracy over labelled graphs `(graph, is_sentinel)`.
    pub fn accuracy(&self, labelled: &[(Graph, bool)]) -> f64 {
        if labelled.is_empty() {
            return 0.0;
        }
        let correct = labelled
            .iter()
            .filter(|(g, label)| self.is_sentinel(g) == *label)
            .count();
        correct as f64 / labelled.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new("c");
        let mut prev = g.input([1, 4]);
        for _ in 1..n {
            prev = g.add(Op::Activation(Activation::Relu), [prev]);
        }
        g.set_outputs([prev]);
        g
    }

    fn star(n: usize) -> Graph {
        let mut g = Graph::new("s");
        let hub = g.input([1, 4]);
        let leaves: Vec<_> = (0..n - 1)
            .map(|_| g.add(Op::Activation(Activation::Relu), [hub]))
            .collect();
        g.set_outputs(leaves);
        g
    }

    #[test]
    fn detects_statistically_different_graphs() {
        let reals: Vec<Graph> = (8..16).map(chain).collect();
        let adv = StatsAdversary::fit(&reals, 0.1);
        // a star of the same size has very different degree stats
        assert!(adv.is_sentinel(&star(12)));
        // chains like the training data pass
        assert!(!adv.is_sentinel(&chain(11)));
    }

    #[test]
    fn accuracy_on_mixed_set() {
        let reals: Vec<Graph> = (8..16).map(chain).collect();
        let adv = StatsAdversary::fit(&reals, 0.1);
        let labelled: Vec<(Graph, bool)> = (8..14)
            .map(|n| (chain(n), false))
            .chain((8..14).map(|n| (star(n), true)))
            .collect();
        assert!(adv.accuracy(&labelled) > 0.8);
    }
}
