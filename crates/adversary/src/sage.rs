//! GraphSAGE binary classifier (paper §5.3.2, Figure 7, Appendix A.5).
//!
//! Architecture, following the paper: operator embedding → two SAGEConv
//! layers (mean aggregation over the neighborhood) → mean node reduction →
//! linear head → sentinel-probability. Trained with binary cross-entropy.

use crate::features::{GraphFeatures, NODE_FEATURES};
use proteus_graph::Graph;
use proteus_nn::{Adam, Linear, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Classifier hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SageConfig {
    /// Opcode-embedding width.
    pub embed: usize,
    /// Hidden width of the SAGE layers.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size (graphs per update).
    pub batch: usize,
}

impl Default for SageConfig {
    fn default() -> Self {
        SageConfig {
            embed: 24,
            hidden: 24,
            epochs: 8,
            lr: 0.01,
            batch: 8,
        }
    }
}

/// One SAGE layer: `h' = relu([h | mean_neigh(h)] W + b)`.
#[derive(Debug, Clone)]
struct SageLayer {
    lin: Linear,
}

impl SageLayer {
    fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut StdRng,
    ) -> SageLayer {
        SageLayer {
            lin: Linear::new(name, 2 * in_dim, out_dim, store, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, h: Var, agg: Var) -> Var {
        let neigh = tape.matmul(agg, h);
        let cat = tape.concat_cols(h, neigh);
        let out = self.lin.forward(tape, store, cat);
        tape.relu(out)
    }
}

/// The GNN adversary classifier.
#[derive(Debug)]
pub struct SageClassifier {
    cfg: SageConfig,
    store: ParamStore,
    embed: Linear,
    sage1: SageLayer,
    sage2: SageLayer,
    head: Linear,
}

/// A labelled training example: features + `1.0` for sentinel, `0.0` for a
/// real subgraph.
#[derive(Debug, Clone)]
pub struct Example {
    pub features: GraphFeatures,
    pub label: f32,
}

impl Example {
    /// Builds an example from a graph.
    pub fn new(graph: &Graph, is_sentinel: bool) -> Example {
        Example {
            features: GraphFeatures::of(graph),
            label: if is_sentinel { 1.0 } else { 0.0 },
        }
    }
}

impl SageClassifier {
    /// Initializes an untrained classifier.
    pub fn new(cfg: SageConfig, seed: u64) -> SageClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let embed = Linear::new("embed", NODE_FEATURES, cfg.embed, &mut store, &mut rng);
        let sage1 = SageLayer::new("sage1", cfg.embed, cfg.hidden, &mut store, &mut rng);
        let sage2 = SageLayer::new("sage2", cfg.hidden, cfg.hidden, &mut store, &mut rng);
        let head = Linear::new("head", cfg.hidden, 1, &mut store, &mut rng);
        SageClassifier {
            cfg,
            store,
            embed,
            sage1,
            sage2,
            head,
        }
    }

    fn logit(&self, tape: &mut Tape, feats: &GraphFeatures) -> Var {
        let x = tape.constant(feats.nodes.clone());
        let agg = tape.constant(feats.agg.clone());
        let h = self.embed.forward(tape, &self.store, x);
        let h = tape.relu(h);
        let h = self.sage1.forward(tape, &self.store, h, agg);
        let h = self.sage2.forward(tape, &self.store, h, agg);
        let pooled = tape.mean_rows(h);
        self.head.forward(tape, &self.store, pooled)
    }

    /// Probability that `graph` is a sentinel.
    pub fn confidence(&self, graph: &Graph) -> f64 {
        self.confidence_features(&GraphFeatures::of(graph))
    }

    /// Probability from precomputed features.
    pub fn confidence_features(&self, feats: &GraphFeatures) -> f64 {
        let mut tape = Tape::new();
        let logit = self.logit(&mut tape, feats);
        let v = tape.value(logit).get(0, 0) as f64;
        1.0 / (1.0 + (-v).exp())
    }

    /// Trains on labelled examples; returns per-epoch mean losses.
    pub fn train(&mut self, examples: &[Example], seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adam = Adam::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch.max(1)) {
                let mut tape = Tape::new();
                let mut total: Option<Var> = None;
                for &i in chunk {
                    let ex = &examples[i];
                    if ex.features.is_empty() {
                        continue;
                    }
                    let logit = self.logit(&mut tape, &ex.features);
                    let t = tape.constant(Matrix::new(1, 1, vec![ex.label]));
                    let loss = tape.bce_with_logits(logit, t);
                    total = Some(match total {
                        None => loss,
                        Some(acc) => tape.add(acc, loss),
                    });
                }
                let Some(loss) = total else { continue };
                let scaled = tape.scale(loss, 1.0 / chunk.len() as f32);
                epoch_loss += tape.value(scaled).get(0, 0);
                batches += 1;
                let grads = tape.backward(scaled);
                adam.step(&mut self.store, &grads);
            }
            history.push(if batches == 0 {
                0.0
            } else {
                epoch_loss / batches as f32
            });
        }
        history
    }

    /// Classification accuracy at threshold 0.5 over examples.
    pub fn accuracy(&self, examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|ex| {
                let p = self.confidence_features(&ex.features);
                (p >= 0.5) == (ex.label >= 0.5)
            })
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Op};
    use rand::Rng;

    /// Real-looking: conv->relu chains. Fake-looking: random opcode soup.
    fn toy_dataset(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..n {
            let len = rng.gen_range(4..9);
            let mut g = Graph::new("toy");
            let mut prev = g.input([1, 8, 8, 8]);
            if i % 2 == 0 {
                // "real": conv-relu alternation
                for j in 0..len {
                    prev = if j % 2 == 0 {
                        g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [prev])
                    } else {
                        g.add(Op::Activation(Activation::Relu), [prev])
                    };
                }
                g.set_outputs([prev]);
                out.push(Example::new(&g, false));
            } else {
                // "sentinel": implausible opcode sequences
                for _ in 0..len {
                    let op = match rng.gen_range(0..4) {
                        0 => Op::Softmax { axis: -1 },
                        1 => Op::Activation(Activation::Sigmoid),
                        2 => Op::GlobalAveragePool,
                        _ => Op::Flatten,
                    };
                    prev = g.add(op, [prev]);
                }
                g.set_outputs([prev]);
                out.push(Example::new(&g, true));
            }
        }
        out
    }

    #[test]
    fn learns_to_separate_obvious_classes() {
        let train = toy_dataset(60, 1);
        let test = toy_dataset(30, 2);
        let mut clf = SageClassifier::new(
            SageConfig {
                epochs: 10,
                ..Default::default()
            },
            7,
        );
        let history = clf.train(&train, 3);
        assert!(history.last().unwrap() < history.first().unwrap());
        let acc = clf.accuracy(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn confidence_in_unit_interval() {
        let clf = SageClassifier::new(SageConfig::default(), 0);
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        let c = clf.confidence(&g);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn untrained_classifier_is_uninformative() {
        let clf = SageClassifier::new(SageConfig::default(), 4);
        let test = toy_dataset(40, 5);
        let acc = clf.accuracy(&test);
        assert!((0.2..=0.8).contains(&acc), "untrained accuracy {acc}");
    }
}
