//! Graph → tensor featurization for the GNN adversary.
//!
//! Mirrors the paper's classifier input (Figure 7): per-node operator
//! information (one-hot opcode embedding input) plus the adjacency
//! structure. Degree features are appended so arity-implausible operator
//! placements (the tell of naive sentinels) are visible to the model.

use proteus_graph::{Graph, NodeId, OpCode};
use proteus_nn::Matrix;
use std::collections::HashMap;

/// Width of the per-node feature vector.
pub const NODE_FEATURES: usize = OpCode::COUNT + 2;

/// Featurized graph: node features and a row-normalized (undirected)
/// neighbor-aggregation matrix.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// `n x NODE_FEATURES` node feature matrix.
    pub nodes: Matrix,
    /// `n x n` row-normalized adjacency (mean aggregator).
    pub agg: Matrix,
}

impl GraphFeatures {
    /// Extracts features from a computational graph.
    pub fn of(graph: &Graph) -> GraphFeatures {
        let ids = graph.node_ids();
        let index: HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len().max(1);
        let mut nodes = Matrix::zeros(n, NODE_FEATURES);
        let succ = graph.successors();
        for (row, &id) in ids.iter().enumerate() {
            let node = graph.node(id).expect("live");
            nodes.set(row, node.op.opcode().index(), 1.0);
            // normalized in/out degree
            nodes.set(row, OpCode::COUNT, node.inputs.len() as f32 / 4.0);
            nodes.set(
                row,
                OpCode::COUNT + 1,
                succ.get(&id).map(|s| s.len()).unwrap_or(0) as f32 / 4.0,
            );
        }
        let mut agg = Matrix::zeros(n, n);
        let adj = graph.undirected_adjacency();
        for (row, &id) in ids.iter().enumerate() {
            let neighbors = &adj[&id];
            if neighbors.is_empty() {
                agg.set(row, row, 1.0); // self-loop for isolated nodes
                continue;
            }
            let w = 1.0 / neighbors.len() as f32;
            for nb in neighbors {
                agg.set(row, index[nb], w);
            }
        }
        GraphFeatures { nodes, agg }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.rows()
    }

    /// True when the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.rows() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    #[test]
    fn features_have_expected_shape() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Add, [x, r]);
        g.set_outputs([s]);
        let f = GraphFeatures::of(&g);
        assert_eq!(f.len(), 3);
        assert_eq!(f.nodes.cols(), NODE_FEATURES);
        assert_eq!((f.agg.rows(), f.agg.cols()), (3, 3));
    }

    #[test]
    fn opcode_onehot_set() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        let f = GraphFeatures::of(&g);
        // row order = arena order: input first, relu second
        assert_eq!(f.nodes.get(0, OpCode::Input.index()), 1.0);
        assert_eq!(f.nodes.get(1, OpCode::Relu.index()), 1.0);
        // in-degree of relu is 1 -> 0.25 normalized
        assert_eq!(f.nodes.get(1, OpCode::COUNT), 0.25);
    }

    #[test]
    fn aggregation_rows_sum_to_one() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let b = g.add(Op::Activation(Activation::Tanh), [x]);
        let s = g.add(Op::Add, [a, b]);
        g.set_outputs([s]);
        let f = GraphFeatures::of(&g);
        for r in 0..f.agg.rows() {
            let sum: f32 = (0..f.agg.cols()).map(|c| f.agg.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }
}
