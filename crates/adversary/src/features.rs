//! Graph → tensor featurization for the GNN adversary.
//!
//! Mirrors the paper's classifier input (Figure 7): per-node operator
//! information (one-hot opcode embedding input) plus the adjacency
//! structure. Degree features are appended so arity-implausible operator
//! placements (the tell of naive sentinels) are visible to the model.

use proteus_graph::{Graph, NodeId, OpCode};
use proteus_nn::Matrix;
use std::collections::HashMap;

/// Width of the per-node feature vector.
pub const NODE_FEATURES: usize = OpCode::COUNT + 2;

/// Number of coarse opcode classes in the structural summary histogram.
const OPCODE_CLASSES: usize = 7;

/// Width of the whole-graph structural summary vector.
pub const SUMMARY_FEATURES: usize = 8 + OPCODE_CLASSES;

/// Coarse class of an opcode for the summary histogram: contraction-heavy
/// (conv), dense (gemm/matmul), normalization, activation, data movement,
/// reduction, and everything else.
fn opcode_class(code: OpCode) -> usize {
    match code {
        OpCode::Conv => 0,
        OpCode::Gemm | OpCode::MatMul | OpCode::MatMulT => 1,
        OpCode::BatchNorm | OpCode::LayerNorm | OpCode::SkipLayerNorm | OpCode::Softmax => 2,
        c if OpCode::ACTIVATIONS.contains(&c) => 3,
        OpCode::Concat
        | OpCode::Flatten
        | OpCode::Reshape
        | OpCode::Transpose
        | OpCode::Identity
        | OpCode::Gather => 4,
        OpCode::MaxPool | OpCode::AveragePool | OpCode::GlobalAveragePool | OpCode::ReduceMean => 5,
        _ => 6,
    }
}

/// Whole-graph structural summary: normalized size/degree/branching
/// statistics plus a coarse opcode-class histogram. This is the
/// fixed-width side input of the learned structural attacker — the
/// statistics the provenance-sanitization literature identifies as the
/// residual leakage channels of a sanitized graph.
pub fn structural_summary(graph: &Graph) -> Vec<f32> {
    let ids = graph.node_ids();
    let n = ids.len();
    let mut v = vec![0.0f32; SUMMARY_FEATURES];
    if n == 0 {
        return v;
    }
    let succ = graph.successors();
    let mut edges = 0usize;
    let mut branches = 0usize; // nodes feeding >1 consumer
    let mut merges = 0usize; // nodes with >1 operand
    let mut max_in = 0usize;
    let mut max_out = 0usize;
    let mut skip_edges = 0usize; // edges spanning >1 position in topo order
    let order = graph.topo_order().unwrap_or_else(|_| ids.clone());
    let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    for &id in &ids {
        let node = graph.node(id).expect("live");
        let indeg = node.inputs.len();
        let outdeg = succ.get(&id).map(|s| s.len()).unwrap_or(0);
        edges += indeg;
        max_in = max_in.max(indeg);
        max_out = max_out.max(outdeg);
        if outdeg > 1 {
            branches += 1;
        }
        if indeg > 1 {
            merges += 1;
        }
        for &src in &node.inputs {
            if pos[&id].saturating_sub(pos[&src]) > 1 {
                skip_edges += 1;
            }
        }
        v[8 + opcode_class(node.op.opcode())] += 1.0;
    }
    // longest path (critical depth) via DP over the topological order
    let mut depth: HashMap<NodeId, usize> = HashMap::new();
    let mut max_depth = 0usize;
    for &id in &order {
        let node = graph.node(id).expect("live");
        let d = 1 + node
            .inputs
            .iter()
            .map(|src| depth.get(src).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        max_depth = max_depth.max(d);
        depth.insert(id, d);
    }
    let nf = n as f32;
    v[0] = nf / 100.0;
    v[1] = edges as f32 / nf;
    v[2] = max_in as f32 / 8.0;
    v[3] = max_out as f32 / 8.0;
    v[4] = branches as f32 / nf;
    v[5] = merges as f32 / nf;
    v[6] = skip_edges as f32 / edges.max(1) as f32;
    v[7] = max_depth as f32 / 100.0;
    for c in 0..OPCODE_CLASSES {
        v[8 + c] /= nf;
    }
    v
}

/// Featurized graph: node features and a row-normalized (undirected)
/// neighbor-aggregation matrix.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// `n x NODE_FEATURES` node feature matrix.
    pub nodes: Matrix,
    /// `n x n` row-normalized adjacency (mean aggregator).
    pub agg: Matrix,
}

impl GraphFeatures {
    /// Extracts features from a computational graph.
    pub fn of(graph: &Graph) -> GraphFeatures {
        let ids = graph.node_ids();
        let index: HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let n = ids.len().max(1);
        let mut nodes = Matrix::zeros(n, NODE_FEATURES);
        let succ = graph.successors();
        for (row, &id) in ids.iter().enumerate() {
            let node = graph.node(id).expect("live");
            nodes.set(row, node.op.opcode().index(), 1.0);
            // normalized in/out degree
            nodes.set(row, OpCode::COUNT, node.inputs.len() as f32 / 4.0);
            nodes.set(
                row,
                OpCode::COUNT + 1,
                succ.get(&id).map(|s| s.len()).unwrap_or(0) as f32 / 4.0,
            );
        }
        let mut agg = Matrix::zeros(n, n);
        let adj = graph.undirected_adjacency();
        for (row, &id) in ids.iter().enumerate() {
            let neighbors = &adj[&id];
            if neighbors.is_empty() {
                agg.set(row, row, 1.0); // self-loop for isolated nodes
                continue;
            }
            let w = 1.0 / neighbors.len() as f32;
            for nb in neighbors {
                agg.set(row, index[nb], w);
            }
        }
        GraphFeatures { nodes, agg }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.rows()
    }

    /// True when the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.rows() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    #[test]
    fn features_have_expected_shape() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Add, [x, r]);
        g.set_outputs([s]);
        let f = GraphFeatures::of(&g);
        assert_eq!(f.len(), 3);
        assert_eq!(f.nodes.cols(), NODE_FEATURES);
        assert_eq!((f.agg.rows(), f.agg.cols()), (3, 3));
    }

    #[test]
    fn opcode_onehot_set() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        let f = GraphFeatures::of(&g);
        // row order = arena order: input first, relu second
        assert_eq!(f.nodes.get(0, OpCode::Input.index()), 1.0);
        assert_eq!(f.nodes.get(1, OpCode::Relu.index()), 1.0);
        // in-degree of relu is 1 -> 0.25 normalized
        assert_eq!(f.nodes.get(1, OpCode::COUNT), 0.25);
    }

    #[test]
    fn structural_summary_has_fixed_width() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let b = g.add(Op::Activation(Activation::Tanh), [x]);
        let s = g.add(Op::Add, [a, b]);
        g.set_outputs([s]);
        let v = structural_summary(&g);
        assert_eq!(v.len(), SUMMARY_FEATURES);
        // x feeds two consumers -> one branching node of four
        assert!((v[4] - 0.25).abs() < 1e-6, "branch fraction {}", v[4]);
        // the Add merges two operands -> one merge node of four
        assert!((v[5] - 0.25).abs() < 1e-6, "merge fraction {}", v[5]);
        // opcode-class fractions sum to one
        let hist: f32 = v[8..].iter().sum();
        assert!((hist - 1.0).abs() < 1e-5, "histogram sums to {hist}");
    }

    #[test]
    fn skip_connections_visible_in_summary() {
        // a residual pattern: input -> relu -> add(input) has one edge
        // spanning two topo positions
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Add, [x, r]);
        g.set_outputs([s]);
        let v = structural_summary(&g);
        assert!(v[6] > 0.0, "skip fraction should be positive, got {}", v[6]);

        // a pure chain has none
        let mut c = Graph::new("chain");
        let x = c.input([1, 4]);
        let r = c.add(Op::Activation(Activation::Relu), [x]);
        let t = c.add(Op::Activation(Activation::Tanh), [r]);
        c.set_outputs([t]);
        let vc = structural_summary(&c);
        assert_eq!(vc[6], 0.0);
    }

    #[test]
    fn empty_graph_summary_is_zero() {
        let g = Graph::new("empty");
        let v = structural_summary(&g);
        assert_eq!(v, vec![0.0; SUMMARY_FEATURES]);
    }

    #[test]
    fn aggregation_rows_sum_to_one() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let b = g.add(Op::Activation(Activation::Tanh), [x]);
        let s = g.add(Op::Add, [a, b]);
        g.set_outputs([s]);
        let f = GraphFeatures::of(&g);
        for r in 0..f.agg.rows() {
            let sum: f32 = (0..f.agg.cols()).map(|c| f.agg.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }
}
