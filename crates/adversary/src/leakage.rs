//! Per-family structural-leakage metrics.
//!
//! How much does a bucket's *structure* give away about which member is
//! real? Following the residual-leakage channels identified in the
//! provenance-sanitization literature (aggregate statistics survive node
//! renaming and local rewrites), we report, per architecture family:
//!
//! - **degree divergence** — Kolmogorov–Smirnov distance between the
//!   undirected degree distributions of real pieces and their sentinels;
//! - **opcode divergence** — total-variation distance between the coarse
//!   opcode-class histograms of reals and sentinels;
//! - **classifier advantage** — a trained classifier's mean sentinel
//!   confidence on sentinels minus its mean on reals (0 = blind,
//!   1 = perfect separation);
//! - **specificity at α=1** — the fraction of sentinels the classifier
//!   eliminates at the threshold that keeps every real subgraph.

use crate::attack::{attack_buckets, BucketClassifier, LabelledBucket};
use crate::features::structural_summary;
use proteus_graph::stats::ks_distance;
use proteus_graph::Graph;

/// Structural-leakage metrics for one group of buckets (typically one
/// architecture family).
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Buckets measured.
    pub n_buckets: usize,
    /// KS distance between real and sentinel degree distributions.
    pub degree_divergence: f64,
    /// Total-variation distance between real and sentinel opcode-class
    /// histograms.
    pub opcode_divergence: f64,
    /// Mean classifier confidence gap (sentinels minus reals), clamped at
    /// zero — negative gaps mean the classifier is anti-correlated, which
    /// leaks nothing the adversary can use under α=1.
    pub classifier_advantage: f64,
    /// Specificity of the α=1 bucket attack.
    pub specificity_alpha1: f64,
}

fn degree_samples(g: &Graph) -> Vec<f64> {
    g.undirected_adjacency()
        .values()
        .map(|nbrs| nbrs.len() as f64)
        .collect()
}

/// Mean opcode-class histogram over graphs (the last
/// [`crate::features::SUMMARY_FEATURES`] − 8 entries of the summary).
fn mean_class_histogram(graphs: &[&Graph]) -> Vec<f64> {
    let mut acc: Vec<f64> = Vec::new();
    for g in graphs {
        let s = structural_summary(g);
        let hist = &s[8..];
        if acc.is_empty() {
            acc = vec![0.0; hist.len()];
        }
        for (a, &h) in acc.iter_mut().zip(hist) {
            *a += h as f64;
        }
    }
    let n = graphs.len().max(1) as f64;
    acc.iter_mut().for_each(|a| *a /= n);
    acc
}

/// Measures structural leakage of a set of buckets under a trained
/// classifier.
///
/// # Panics
/// Panics if `buckets` is empty (no leakage is measurable).
pub fn measure_leakage<C: BucketClassifier + ?Sized>(
    clf: &C,
    buckets: &[LabelledBucket],
) -> LeakageReport {
    assert!(!buckets.is_empty(), "leakage needs at least one bucket");
    let mut real_degrees = Vec::new();
    let mut fake_degrees = Vec::new();
    let mut real_conf = Vec::new();
    let mut fake_conf = Vec::new();
    let reals: Vec<&Graph> = buckets.iter().map(|b| &b.real).collect();
    let fakes: Vec<&Graph> = buckets.iter().flat_map(|b| b.sentinels.iter()).collect();
    for b in buckets {
        real_degrees.extend(degree_samples(&b.real));
        real_conf.push(clf.confidence(&b.real));
        for s in &b.sentinels {
            fake_degrees.extend(degree_samples(s));
            fake_conf.push(clf.confidence(s));
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let real_hist = mean_class_histogram(&reals);
    let fake_hist = mean_class_histogram(&fakes);
    let opcode_divergence = real_hist
        .iter()
        .zip(&fake_hist)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    let report = attack_buckets(clf, buckets);
    LeakageReport {
        n_buckets: buckets.len(),
        degree_divergence: ks_distance(&real_degrees, &fake_degrees),
        opcode_divergence,
        classifier_advantage: (mean(&fake_conf) - mean(&real_conf)).max(0.0),
        specificity_alpha1: report.specificity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    struct ConstClassifier(f64);
    impl BucketClassifier for ConstClassifier {
        fn confidence(&self, _: &Graph) -> f64 {
            self.0
        }
    }

    fn chain(len: usize, act: Activation) -> Graph {
        let mut g = Graph::new("c");
        let mut prev = g.input([1, 4]);
        for _ in 0..len {
            prev = g.add(Op::Activation(act), [prev]);
        }
        g.set_outputs([prev]);
        g
    }

    fn buckets() -> Vec<LabelledBucket> {
        (0..4)
            .map(|i| LabelledBucket {
                real: chain(3 + i, Activation::Relu),
                sentinels: (0..3).map(|j| chain(3 + j, Activation::Tanh)).collect(),
            })
            .collect()
    }

    #[test]
    fn blind_classifier_has_no_advantage() {
        let r = measure_leakage(&ConstClassifier(0.5), &buckets());
        assert_eq!(r.classifier_advantage, 0.0);
        assert_eq!(r.specificity_alpha1, 0.0);
        assert_eq!(r.n_buckets, 4);
    }

    #[test]
    fn identical_structures_have_zero_divergence() {
        let bs: Vec<LabelledBucket> = (0..3)
            .map(|_| LabelledBucket {
                real: chain(4, Activation::Relu),
                sentinels: vec![chain(4, Activation::Relu)],
            })
            .collect();
        let r = measure_leakage(&ConstClassifier(0.5), &bs);
        assert!(r.degree_divergence < 1e-9);
        assert!(r.opcode_divergence < 1e-9);
    }

    #[test]
    fn size_mismatch_shows_in_degree_divergence() {
        let bs: Vec<LabelledBucket> = (0..3)
            .map(|_| LabelledBucket {
                real: chain(2, Activation::Relu),
                sentinels: vec![chain(20, Activation::Relu)],
            })
            .collect();
        let r = measure_leakage(&ConstClassifier(0.5), &bs);
        assert!(
            r.degree_divergence > 0.1,
            "degree divergence {}",
            r.degree_divergence
        );
    }

    #[test]
    fn metrics_are_bounded() {
        let r = measure_leakage(&ConstClassifier(0.9), &buckets());
        assert!((0.0..=1.0).contains(&r.degree_divergence));
        assert!((0.0..=1.0).contains(&r.opcode_divergence));
        assert!((0.0..=1.0).contains(&r.classifier_advantage));
        assert!((0.0..=1.0).contains(&r.specificity_alpha1));
    }
}
