//! The bucket attack and its search-space accounting (paper §5.3.2 and
//! Appendix A.6).
//!
//! The adversary observes, for each of the `n` protected subgraphs, a
//! bucket of `k + 1` candidates (one real, `k` sentinels). Its classifier
//! assigns each candidate a sentinel-confidence `y ∈ [0, 1]`; it eliminates
//! candidates with `y ≥ γ`. Because eliminating a *real* subgraph destroys
//! the attack (the true model leaves the search space), the paper bounds
//! the adversary's power pessimistically: γ is set to the smallest value
//! that keeps every real subgraph (sensitivity α = 1), and the remaining
//! search space is `Π_i (1 + s_i)` where `s_i` counts surviving sentinels
//! of bucket `i` — i.e. `[1 + (1 - β)k]^n` for uniform specificity β.

use crate::learned::StructuralAttacker;
use crate::sage::SageClassifier;
use proteus_graph::Graph;

/// Anything that scores a graph with a sentinel-probability. Implemented
/// by both learning-based adversaries so the bucket attack and the
/// leakage metrics run against either.
pub trait BucketClassifier {
    /// Probability that `graph` is a sentinel.
    fn confidence(&self, graph: &Graph) -> f64;
}

impl BucketClassifier for SageClassifier {
    fn confidence(&self, graph: &Graph) -> f64 {
        SageClassifier::confidence(self, graph)
    }
}

impl BucketClassifier for StructuralAttacker {
    fn confidence(&self, graph: &Graph) -> f64 {
        StructuralAttacker::confidence(self, graph)
    }
}

/// One obfuscation bucket as the adversary sees it, with ground truth
/// attached for evaluation.
#[derive(Debug, Clone)]
pub struct LabelledBucket {
    /// The real protected subgraph.
    pub real: Graph,
    /// The `k` sentinels hiding it.
    pub sentinels: Vec<Graph>,
}

/// Result of attacking a set of buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Number of buckets (`n`).
    pub n: usize,
    /// Sentinels per bucket (`k`, the maximum across buckets).
    pub k: usize,
    /// The minimal decision threshold keeping all real subgraphs.
    pub min_gamma: f64,
    /// Fraction of sentinels (across all buckets) correctly eliminated at
    /// that threshold.
    pub specificity: f64,
    /// log10 of the surviving search-space size.
    pub log10_candidates: f64,
}

impl AttackReport {
    /// Human-readable `a.bc x 10^e` rendering of the candidate count.
    pub fn candidates_string(&self) -> String {
        let e = self.log10_candidates.floor();
        let mantissa = 10f64.powf(self.log10_candidates - e);
        if self.log10_candidates < 3.0 {
            format!("{:.2}", 10f64.powf(self.log10_candidates))
        } else {
            format!("{mantissa:.2}e{e:+03.0}")
        }
    }
}

/// Runs the α=1 attack with a trained classifier over labelled buckets.
///
/// # Panics
/// Panics if `buckets` is empty.
pub fn attack_buckets<C: BucketClassifier + ?Sized>(
    clf: &C,
    buckets: &[LabelledBucket],
) -> AttackReport {
    assert!(!buckets.is_empty(), "attack needs at least one bucket");
    let real_conf: Vec<f64> = buckets.iter().map(|b| clf.confidence(&b.real)).collect();
    // γ must strictly exceed every real confidence so that no real subgraph
    // is eliminated (the paper's pessimistic optimum).
    let min_gamma = real_conf
        .iter()
        .fold(0.0f64, |a, &b| a.max(b))
        .min(1.0 - 1e-9)
        + 1e-9;
    let mut total_sentinels = 0usize;
    let mut eliminated = 0usize;
    let mut log10_candidates = 0.0f64;
    let mut k_max = 0usize;
    for bucket in buckets {
        k_max = k_max.max(bucket.sentinels.len());
        let mut survivors = 0usize;
        for s in &bucket.sentinels {
            let y = clf.confidence(s);
            total_sentinels += 1;
            if y >= min_gamma {
                eliminated += 1;
            } else {
                survivors += 1;
            }
        }
        log10_candidates += ((1 + survivors) as f64).log10();
    }
    AttackReport {
        n: buckets.len(),
        k: k_max,
        min_gamma,
        specificity: if total_sentinels == 0 {
            0.0
        } else {
            eliminated as f64 / total_sentinels as f64
        },
        log10_candidates,
    }
}

/// The analytic search-space size `log10[(1 + (1-β)k)^n]` (paper §5.3.2),
/// for cross-checking measured reports.
pub fn analytic_log10_candidates(n: usize, k: usize, specificity: f64) -> f64 {
    let surviving = 1.0 + (1.0 - specificity) * k as f64;
    n as f64 * surviving.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sage::SageConfig;
    use proteus_graph::{Activation, Op};

    fn tiny_graph(tag: u64) -> Graph {
        let mut g = Graph::new("t");
        let mut prev = g.input([1, 4]);
        for i in 0..(2 + (tag % 3)) {
            let act = if (tag + i).is_multiple_of(2) {
                Activation::Relu
            } else {
                Activation::Tanh
            };
            prev = g.add(Op::Activation(act), [prev]);
        }
        g.set_outputs([prev]);
        g
    }

    fn buckets(n: usize, k: usize) -> Vec<LabelledBucket> {
        (0..n)
            .map(|i| LabelledBucket {
                real: tiny_graph(i as u64),
                sentinels: (0..k)
                    .map(|j| tiny_graph((i * k + j) as u64 + 100))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn untrained_classifier_leaves_search_space_large() {
        let clf = SageClassifier::new(SageConfig::default(), 1);
        let bs = buckets(10, 20);
        let report = attack_buckets(&clf, &bs);
        assert_eq!(report.n, 10);
        assert_eq!(report.k, 20);
        // an uninformative classifier cannot eliminate everything while
        // keeping all real subgraphs
        assert!(
            report.log10_candidates > 5.0,
            "log10 candidates {}",
            report.log10_candidates
        );
    }

    #[test]
    fn analytic_formula_matches_uniform_case() {
        // β = 0.5, k = 20, n = 10 -> (1 + 10)^10
        let expected = 10.0 * 11f64.log10();
        assert!((analytic_log10_candidates(10, 20, 0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn perfect_specificity_leaves_single_candidate() {
        assert_eq!(analytic_log10_candidates(10, 20, 1.0), 0.0);
    }

    #[test]
    fn candidates_string_formats() {
        let r = AttackReport {
            n: 10,
            k: 20,
            min_gamma: 0.9,
            specificity: 0.5,
            log10_candidates: 10.0 * 11f64.log10(),
        };
        assert!(r.candidates_string().contains('e'));
        let small = AttackReport {
            log10_candidates: 0.0,
            ..r
        };
        assert_eq!(small.candidates_string(), "1.00");
    }

    #[test]
    fn gamma_keeps_all_reals() {
        let clf = SageClassifier::new(SageConfig::default(), 2);
        let bs = buckets(6, 8);
        let report = attack_buckets(&clf, &bs);
        for b in &bs {
            assert!(clf.confidence(&b.real) < report.min_gamma);
        }
    }
}
