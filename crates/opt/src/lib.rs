//! Rule-based graph-level optimizer with an analytical latency model —
//! the ONNXRuntime/Hidet stand-in (paper §2.1, §5.1).
//!
//! The "optimizer party" of the Proteus protocol receives (sub)graphs and
//! returns functionally-equivalent, faster versions. This crate provides:
//!
//! - [`rules`] — the graph-level rewrites the paper cites as representative
//!   (identity elimination, reshape fusion, constant folding, Conv+BN
//!   folding, Conv/Gemm/Add activation fusion, residual-add fusion, CSE,
//!   transpose-pair elimination, Winograd algorithm selection);
//! - [`Optimizer`] with two [`Profile`]s: `OrtLike` (full rule set) and
//!   `HidetLike` (leaner graph-level set, faster kernels) — the two
//!   optimizers of Figure 4;
//! - [`cost`] — a roofline latency model standing in for A100 wall-clock
//!   measurement (see DESIGN.md for the substitution argument);
//! - [`verify`] — interpreter-backed equivalence checking of rewrites.
//!
//! ```
//! use proteus_opt::{Optimizer, Profile};
//! use proteus_graph::TensorMap;
//! let g = proteus_models::build(proteus_models::ModelKind::ResNet);
//! let opt = Optimizer::new(Profile::OrtLike);
//! let report = opt.speedup(&g, &TensorMap::new())?;
//! assert!(report.speedup() > 1.0);
//! # Ok::<(), proteus_graph::GraphError>(())
//! ```
pub mod cost;
mod naive;
pub mod rewriter;
pub mod rules;
pub mod verify;

pub use cost::{estimate_runtime_us, node_latency_us, node_work, CostParams, NodeWork};
pub use rewriter::{Anchors, Engine, OptimizeStats, Optimizer, Profile, RuleSpec, SpeedupReport};
pub use rules::{apply_once, RewriteCtx, Rule};
pub use verify::{check_equivalence, Equivalence};
