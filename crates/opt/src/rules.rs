//! Graph rewrite rules.
//!
//! Each rule is a sweep returning the number of rewrites it applied. Rules
//! receive a [`RewriteCtx`]: the mutable graph and parameter store plus a
//! [`GraphAnalysis`] snapshot computed by the engine *before* the sweep
//! (successors, use counts, topological order, shapes, opcode index), so no
//! rule recomputes a graph-wide analysis itself. The snapshot is
//! deliberately not refreshed mid-sweep — rules collect candidates against
//! it and re-check liveness as they apply, exactly the semantics the
//! previous standalone sweeps had.
//!
//! Rules preserve functional semantics whenever parameter tensors are
//! available (verified against the reference interpreter in tests); on
//! structure-only graphs (no weights) the BN-fold rule still merges
//! structure, matching what a compiler does with real initializers.

use proteus_graph::{
    Activation, ConvAlgo, Executor, Graph, GraphAnalysis, NodeId, Op, OpCode, Shape, Tensor,
    TensorMap,
};
use std::collections::{HashMap, HashSet};

/// Everything a rule sweep needs: the graph and parameters it rewrites,
/// and the engine's cached analysis snapshot of the pre-sweep graph.
pub struct RewriteCtx<'a> {
    /// The graph being rewritten.
    pub graph: &'a mut Graph,
    /// Parameter tensors keyed by node id (rules move/merge entries as they
    /// rewrite nodes).
    pub params: &'a mut TensorMap,
    /// Analysis snapshot of `graph` as it was when the sweep started.
    pub analysis: &'a GraphAnalysis,
}

/// A rewrite rule: sweeps the graph once, returns how many sites changed.
pub type Rule = fn(&mut RewriteCtx) -> usize;

/// Applies one rule standalone: computes a fresh analysis and runs a single
/// sweep. This is what the engine does per rule, minus caching — handy for
/// tests and one-off surgery.
pub fn apply_once(rule: Rule, graph: &mut Graph, params: &mut TensorMap) -> usize {
    let analysis = GraphAnalysis::compute(graph);
    rule(&mut RewriteCtx {
        graph,
        params,
        analysis: &analysis,
    })
}

/// All ancestors of `node` (transitive inputs).
fn ancestors(g: &Graph, node: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        if let Some(n) = g.node(id) {
            for &inp in &n.inputs {
                if out.insert(inp) {
                    stack.push(inp);
                }
            }
        }
    }
    out
}

/// Removes `Identity` nodes and `Reshape`s whose output equals their input
/// shape (ONNXRuntime "Identity Elimination").
pub fn eliminate_identity(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates = analysis.nodes_with(&[OpCode::Identity, OpCode::Reshape]);
    // Shape inference is only needed to judge Reshape candidates; graphs
    // without any stay on the cheap path.
    let shapes = if candidates
        .iter()
        .any(|&id| matches!(ctx.graph.node(id).map(|n| &n.op), Some(Op::Reshape { .. })))
    {
        analysis.shapes(ctx.graph)
    } else {
        None
    };
    let victims: Vec<NodeId> = candidates
        .into_iter()
        .filter(|&id| {
            let n = ctx.graph.node(id).expect("snapshot lists live nodes");
            match &n.op {
                Op::Identity => true,
                Op::Reshape { shape } => shapes.map(|s| &s[n.inputs[0]] == shape).unwrap_or(false),
                _ => false,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    for id in &victims {
        let input = g.node(*id).expect("live").inputs[0];
        g.replace_uses(*id, input);
        g.remove(*id);
    }
    victims.len()
}

/// Removes inference-mode `Dropout` nodes.
pub fn eliminate_dropout(ctx: &mut RewriteCtx) -> usize {
    let victims: Vec<NodeId> = ctx.analysis.of_opcode(OpCode::Dropout).to_vec();
    let g = &mut *ctx.graph;
    for id in &victims {
        let input = g.node(*id).expect("live").inputs[0];
        g.replace_uses(*id, input);
        g.remove(*id);
    }
    victims.len()
}

/// Folds `BatchNorm(Conv(x))` into the convolution (weight rewrite when
/// parameters are present; structural fold when both are weightless).
pub fn fold_bn_into_conv(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId)> = analysis
        .of_opcode(OpCode::BatchNorm)
        .iter()
        .filter_map(|&bn_id| {
            let bn = ctx.graph.node(bn_id).expect("snapshot lists live nodes");
            let conv_id = bn.inputs[0];
            match ctx.graph.node(conv_id).map(|n| &n.op) {
                Some(Op::Conv(c))
                    if analysis.use_count(conv_id) == 1
                        && c.fused_act.is_none()
                        && !c.fused_add =>
                {
                    Some((bn_id, conv_id))
                }
                _ => None,
            }
        })
        .collect();
    let (g, params) = (&mut *ctx.graph, &mut *ctx.params);
    let mut applied = 0;
    for (bn_id, conv_id) in candidates {
        let conv_has = params.get(conv_id).is_some();
        let bn_has = params.get(bn_id).is_some();
        if conv_has != bn_has {
            continue; // cannot fold half-parameterized patterns safely
        }
        if conv_has {
            let bn_p = params.get(bn_id).expect("checked").to_vec();
            let (scale, bias, mean, var) = (&bn_p[0], &bn_p[1], &bn_p[2], &bn_p[3]);
            let conv_p = params.get(conv_id).expect("checked").to_vec();
            let mut w = conv_p[0].clone();
            let out_ch = w.shape().dims()[0];
            let per_out = w.shape().numel() / out_ch;
            const EPS: f32 = 1e-5;
            let factors: Vec<f32> = (0..out_ch)
                .map(|c| scale.data()[c] / (var.data()[c] + EPS).sqrt())
                .collect();
            for (oc, &f) in factors.iter().enumerate() {
                for i in 0..per_out {
                    w.data_mut()[oc * per_out + i] *= f;
                }
            }
            let old_bias = conv_p.get(1).cloned();
            let mut b = Tensor::zeros([out_ch]);
            for (oc, &f) in factors.iter().enumerate() {
                let b0 = old_bias.as_ref().map(|t| t.data()[oc]).unwrap_or(0.0);
                b.data_mut()[oc] = (b0 - mean.data()[oc]) * f + bias.data()[oc];
            }
            params.insert(conv_id, vec![w, b]);
        }
        if let Some(node) = g.node_mut(conv_id) {
            if let Op::Conv(c) = &mut node.op {
                // The fold materializes a bias tensor exactly when the
                // pattern carried parameters; structural (param-less) folds
                // leave the conv unbiased.
                c.has_bias = conv_has;
            }
        }
        params.remove(bn_id);
        g.replace_uses(bn_id, conv_id);
        g.remove(bn_id);
        applied += 1;
    }
    applied
}

/// Fuses `Act(Conv(x))` into the convolution's epilogue.
pub fn fuse_conv_act(ctx: &mut RewriteCtx) -> usize {
    fuse_act_into(
        ctx,
        |op| matches!(op, Op::Conv(c) if c.fused_act.is_none()),
        |op, act| {
            if let Op::Conv(c) = op {
                c.fused_act = Some(act);
            }
        },
    )
}

/// Fuses `Act(Gemm(x))` into the GEMM epilogue.
pub fn fuse_gemm_act(ctx: &mut RewriteCtx) -> usize {
    fuse_act_into(
        ctx,
        |op| matches!(op, Op::Gemm(a) if a.fused_act.is_none()),
        |op, act| {
            if let Op::Gemm(a) = op {
                a.fused_act = Some(act);
            }
        },
    )
}

fn fuse_act_into(
    ctx: &mut RewriteCtx,
    eligible: impl Fn(&Op) -> bool,
    set_act: impl Fn(&mut Op, Activation),
) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId, Activation)> = analysis
        .nodes_with(&OpCode::ACTIVATIONS)
        .into_iter()
        .filter_map(|act_id| {
            let n = ctx.graph.node(act_id).expect("snapshot lists live nodes");
            match &n.op {
                Op::Activation(a) => {
                    let prod = n.inputs[0];
                    match ctx.graph.node(prod) {
                        Some(p) if eligible(&p.op) && analysis.use_count(prod) == 1 => {
                            Some((act_id, prod, *a))
                        }
                        _ => None,
                    }
                }
                _ => None,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    let count = candidates.len();
    for (act_id, prod, act) in candidates {
        // recheck liveness (earlier rewrites in this sweep may invalidate)
        if g.node(act_id).is_none() || g.node(prod).is_none() {
            continue;
        }
        set_act(&mut g.node_mut(prod).expect("live").op, act);
        g.replace_uses(act_id, prod);
        g.remove(act_id);
    }
    count
}

/// Fuses `Add(Conv(x), y)` (residual add) into the convolution when `y`
/// does not depend on the convolution. The fused activation slot must still
/// be empty so the `conv -> add -> act` order is preserved.
pub fn fuse_conv_add(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let mut applied = 0;
    let adds: Vec<NodeId> = analysis.of_opcode(OpCode::Add).to_vec();
    let g = &mut *ctx.graph;
    for add_id in adds {
        let Some(add) = g.node(add_id) else { continue };
        let (a, b) = (add.inputs[0], add.inputs[1]);
        let pick = |g: &Graph, conv: NodeId, other: NodeId| -> bool {
            matches!(
                g.node(conv).map(|n| &n.op),
                Some(Op::Conv(c)) if !c.fused_add && c.fused_act.is_none()
            ) && analysis.use_count(conv) == 1
                && !ancestors(g, other).contains(&conv)
                && conv != other
        };
        let (conv_id, other) = if pick(g, a, b) {
            (a, b)
        } else if pick(g, b, a) {
            (b, a)
        } else {
            continue;
        };
        if let Op::Conv(c) = &mut g.node_mut(conv_id).expect("live").op {
            c.fused_add = true;
        }
        g.node_mut(conv_id).expect("live").inputs.push(other);
        g.replace_uses(add_id, conv_id);
        g.remove(add_id);
        applied += 1;
    }
    applied
}

/// Fuses `Act(Add(a, b))` into a single [`Op::AddAct`] kernel.
pub fn fuse_add_act(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId, Activation)> = analysis
        .nodes_with(&OpCode::ACTIVATIONS)
        .into_iter()
        .filter_map(|act_id| {
            let n = ctx.graph.node(act_id).expect("snapshot lists live nodes");
            match &n.op {
                Op::Activation(a) => {
                    let prod = n.inputs[0];
                    match ctx.graph.node(prod).map(|p| &p.op) {
                        Some(Op::Add) if analysis.use_count(prod) == 1 => Some((act_id, prod, *a)),
                        _ => None,
                    }
                }
                _ => None,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    let count = candidates.len();
    for (act_id, add_id, act) in candidates {
        if g.node(act_id).is_none() || g.node(add_id).is_none() {
            continue;
        }
        g.node_mut(add_id).expect("live").op = Op::AddAct(act);
        g.replace_uses(act_id, add_id);
        g.remove(act_id);
    }
    count
}

/// Fuses `LayerNorm(Add(a, b))` into a single [`Op::SkipLayerNorm`] kernel
/// (ONNXRuntime's SkipLayerNormalization, the dominant transformer fusion).
pub fn fuse_skip_layernorm(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId)> = analysis
        .of_opcode(OpCode::LayerNorm)
        .iter()
        .filter_map(|&ln_id| {
            let n = ctx.graph.node(ln_id).expect("snapshot lists live nodes");
            let add_id = n.inputs[0];
            match ctx.graph.node(add_id).map(|p| &p.op) {
                Some(Op::Add) if analysis.use_count(add_id) == 1 => Some((ln_id, add_id)),
                _ => None,
            }
        })
        .collect();
    let (g, params) = (&mut *ctx.graph, &mut *ctx.params);
    let count = candidates.len();
    for (ln_id, add_id) in candidates {
        if g.node(ln_id).is_none() || g.node(add_id).is_none() {
            continue;
        }
        let attrs = match &g.node(ln_id).expect("live").op {
            Op::LayerNorm(l) => l.clone(),
            _ => continue,
        };
        g.node_mut(add_id).expect("live").op = Op::SkipLayerNorm(attrs);
        if let Some(p) = params.remove(ln_id) {
            params.insert(add_id, p);
        }
        g.replace_uses(ln_id, add_id);
        g.remove(ln_id);
    }
    count
}

/// Fuses `MatMul(a, Transpose(b))` (transpose of the last two dims) into a
/// single [`Op::MatMulT`] (ONNXRuntime's FusedMatMul with `transB`), the
/// Q·Kᵀ pattern of attention.
pub fn fuse_matmul_transpose(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId)> = analysis
        .of_opcode(OpCode::MatMul)
        .iter()
        .filter_map(|&mm_id| {
            let n = ctx.graph.node(mm_id).expect("snapshot lists live nodes");
            let t_id = n.inputs[1];
            match ctx.graph.node(t_id).map(|p| &p.op) {
                Some(Op::Transpose { perm }) if analysis.use_count(t_id) == 1 => {
                    let r = perm.len();
                    let swaps_last_two = r >= 2
                        && perm[..r - 2].iter().enumerate().all(|(i, &p)| p == i)
                        && perm[r - 2] == r - 1
                        && perm[r - 1] == r - 2;
                    if swaps_last_two {
                        Some((mm_id, t_id))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    let count = candidates.len();
    for (mm_id, t_id) in candidates {
        if g.node(mm_id).is_none() || g.node(t_id).is_none() {
            continue;
        }
        let src = g.node(t_id).expect("live").inputs[0];
        let mm = g.node_mut(mm_id).expect("live");
        mm.op = Op::MatMulT;
        mm.inputs[1] = src;
        g.remove(t_id);
    }
    count
}

/// Collapses `Reshape(Reshape(x))` chains (ONNXRuntime "Reshape Fusion").
pub fn fuse_reshape_chain(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let candidates: Vec<(NodeId, NodeId)> = analysis
        .of_opcode(OpCode::Reshape)
        .iter()
        .filter_map(|&outer| {
            let n = ctx.graph.node(outer).expect("snapshot lists live nodes");
            let inner = n.inputs[0];
            match ctx.graph.node(inner).map(|p| &p.op) {
                Some(Op::Reshape { .. }) if analysis.use_count(inner) == 1 => Some((outer, inner)),
                _ => None,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    let count = candidates.len();
    for (outer, inner) in candidates {
        if g.node(outer).is_none() || g.node(inner).is_none() {
            continue;
        }
        let src = g.node(inner).expect("live").inputs[0];
        g.node_mut(outer).expect("live").inputs = vec![src];
        g.remove(inner);
    }
    count
}

/// Eliminates inverse `Transpose(Transpose(x))` pairs.
pub fn eliminate_transpose_pair(ctx: &mut RewriteCtx) -> usize {
    let analysis = ctx.analysis;
    let mut applied = 0;
    let candidates: Vec<(NodeId, NodeId)> = analysis
        .of_opcode(OpCode::Transpose)
        .iter()
        .filter_map(|&outer| {
            let n = ctx.graph.node(outer).expect("snapshot lists live nodes");
            let Op::Transpose { perm: p2 } = &n.op else {
                return None;
            };
            let inner = n.inputs[0];
            match ctx.graph.node(inner).map(|p| &p.op) {
                Some(Op::Transpose { perm: p1 }) if analysis.use_count(inner) == 1 => {
                    // p2 ∘ p1 == identity?
                    let identity = p2.iter().enumerate().all(|(i, &x)| p1[x] == i);
                    if identity {
                        Some((outer, inner))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        })
        .collect();
    let g = &mut *ctx.graph;
    for (outer, inner) in candidates {
        if g.node(outer).is_none() || g.node(inner).is_none() {
            continue;
        }
        let src = g.node(inner).expect("live").inputs[0];
        g.replace_uses(outer, src);
        g.remove(outer);
        g.remove(inner);
        applied += 1;
    }
    applied
}

/// Switches eligible 3x3/stride-1/ungrouped convolutions to the Winograd
/// algorithm. This mirrors a "typically beneficial" library heuristic tuned
/// on ImageNet-scale models: at the small channel counts of NAS cells the
/// transform utilization collapses and the rewrite backfires (paper §6.1).
pub fn winograd_rewrite(ctx: &mut RewriteCtx) -> usize {
    let mut applied = 0;
    let ids: Vec<NodeId> = ctx.analysis.of_opcode(OpCode::Conv).to_vec();
    let g = &mut *ctx.graph;
    for id in ids {
        // check immutably first: `node_mut` counts as a mutation, and a
        // no-op sweep must not dirty the graph (it would wake every
        // Conv-anchored rule each round).
        let eligible = matches!(
            g.node(id).map(|n| &n.op),
            Some(Op::Conv(c))
                if c.kernel == 3 && c.stride == 1 && c.groups == 1 && c.algo == ConvAlgo::Direct
        );
        if !eligible {
            continue;
        }
        if let Op::Conv(c) = &mut g.node_mut(id).expect("live").op {
            c.algo = ConvAlgo::Winograd;
            applied += 1;
        }
    }
    applied
}

/// Common-subexpression elimination: merges nodes with identical operators
/// and identical inputs. `Input` nodes never merge; `Constant`s merge only
/// when their values are present and bit-identical.
pub fn cse(ctx: &mut RewriteCtx) -> usize {
    let Ok(order) = ctx.analysis.topo() else {
        return 0;
    };
    let order: Vec<NodeId> = order.to_vec();
    let (g, params) = (&mut *ctx.graph, &mut *ctx.params);
    // Structural keys (op + input ids); several canonical nodes can share a
    // key when their parameter tensors differ, hence the bucket.
    let mut seen: HashMap<(Op, Vec<NodeId>), Vec<NodeId>> = HashMap::new();
    let mut applied = 0;
    for id in order {
        let Some(node) = g.node(id) else { continue };
        if matches!(node.op, Op::Input { .. }) {
            continue;
        }
        // Parameterized nodes (Conv, Gemm, BN, Constant, ...) compute with
        // their own weights: two such nodes are the same expression only if
        // their parameter tensors are present and bit-identical.
        let parameterized = !proteus_graph::exec::param_signature(&node.op).is_empty();
        if parameterized && params.get(id).is_none() {
            continue;
        }
        let key = (node.op.clone(), node.inputs.clone());
        let bucket = seen.entry(key).or_default();
        let canon = bucket
            .iter()
            .copied()
            .find(|&c| !parameterized || params_bit_equal(params.get(c), params.get(id)));
        match canon {
            Some(canon) => {
                g.replace_uses(id, canon);
                params.remove(id);
                g.remove(id);
                applied += 1;
            }
            None => bucket.push(id),
        }
    }
    applied
}

/// Bit-exact equality of two parameter-tensor lists: shapes plus f32 bit
/// patterns, except that any NaN equals any NaN. That matches the retained
/// naive baseline's debug-string keys (`-0.0` prints differently from
/// `0.0`, but every NaN prints as `NaN`), keeping the engines' merge
/// decisions — and therefore their outputs — bit-identical.
fn params_bit_equal(a: Option<&[Tensor]>, b: Option<&[Tensor]>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    x.shape() == y.shape()
                        && x.data()
                            .iter()
                            .zip(y.data())
                            .all(|(p, q)| p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan()))
                })
        }
        (None, None) => true,
        _ => false,
    }
}

/// Constant folding: evaluates nodes whose inputs are all value-carrying
/// `Constant`s and replaces them with a new `Constant`.
pub fn constant_fold(ctx: &mut RewriteCtx) -> usize {
    let Ok(order) = ctx.analysis.topo() else {
        return 0;
    };
    let order: Vec<NodeId> = order.to_vec();
    let (g, params) = (&mut *ctx.graph, &mut *ctx.params);
    let mut applied = 0;
    for id in order {
        let Some(node) = g.node(id) else { continue };
        if matches!(node.op, Op::Constant { .. } | Op::Input { .. }) || node.inputs.is_empty() {
            continue;
        }
        let all_const = node.inputs.iter().all(|&i| {
            matches!(g.node(i).map(|n| &n.op), Some(Op::Constant { .. })) && params.get(i).is_some()
        });
        if !all_const {
            continue;
        }
        // ops with their own parameters need those too
        if !proteus_graph::exec::param_signature(&node.op).is_empty() && params.get(id).is_none() {
            continue;
        }
        // Build a tiny graph: clone constants + this node, execute.
        let mut tmp = Graph::new("fold");
        let mut tmp_params = TensorMap::new();
        let mut input_map = Vec::new();
        for &i in &node.inputs {
            let shape = match g.node(i).map(|n| &n.op) {
                Some(Op::Constant { shape }) => shape.clone(),
                _ => unreachable!("checked all_const"),
            };
            let c = tmp.constant(shape);
            tmp_params.insert(c, params.get(i).expect("checked").to_vec());
            input_map.push(c);
        }
        let n = tmp.add(node.op.clone(), input_map);
        if let Some(p) = params.get(id) {
            tmp_params.insert(n, p.to_vec());
        }
        tmp.set_outputs([n]);
        let Ok(result) = Executor::new(&tmp, &tmp_params).run(&[]) else {
            continue;
        };
        let value = result.into_iter().next().expect("one output");
        let shape: Shape = value.shape().clone();
        let folded = g.add(Op::Constant { shape }, []);
        params.insert(folded, vec![value]);
        params.remove(id);
        g.replace_uses(id, folded);
        g.remove(id);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{BatchNormAttrs, ConvAttrs, GemmAttrs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_equiv(
        before: &Graph,
        before_p: &TensorMap,
        after: &Graph,
        after_p: &TensorMap,
        input_shape: &[usize],
    ) {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3 {
            let x = Tensor::random(input_shape.to_vec(), 1.0, &mut rng);
            let a = Executor::new(before, before_p)
                .run(std::slice::from_ref(&x))
                .unwrap();
            let b = Executor::new(after, after_p).run(&[x]).unwrap();
            assert_eq!(a.len(), b.len());
            for (ta, tb) in a.iter().zip(&b) {
                assert!(
                    ta.allclose(tb, 1e-3),
                    "outputs diverge: max diff {}",
                    ta.max_abs_diff(tb)
                );
            }
        }
    }

    #[test]
    fn identity_elimination_preserves_semantics() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let i1 = g.add(Op::Identity, [x]);
        let r = g.add(Op::Activation(Activation::Relu), [i1]);
        let i2 = g.add(Op::Identity, [r]);
        g.set_outputs([i2]);
        let p = TensorMap::new();
        let before = g.clone();
        let mut pm = p.clone();
        let n = apply_once(eliminate_identity, &mut g, &mut pm);
        assert_eq!(n, 2);
        assert_eq!(g.len(), 2);
        g.validate().unwrap();
        assert_equiv(&before, &p, &g, &pm, &[1, 4]);
    }

    #[test]
    fn bn_fold_preserves_semantics() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 6, 3).padding(1)), [x]);
        let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: 6 }), [c]);
        let r = g.add(Op::Activation(Activation::Relu), [bn]);
        g.set_outputs([r]);
        let params = TensorMap::init_random(&g, 3);
        let before = g.clone();
        let before_p = params.clone();
        let mut pm = params;
        let n = apply_once(fold_bn_into_conv, &mut g, &mut pm);
        assert_eq!(n, 1);
        g.validate().unwrap();
        assert!(g.iter().all(|(_, n)| !matches!(n.op, Op::BatchNorm(_))));
        assert_equiv(&before, &before_p, &g, &pm, &[1, 3, 8, 8]);
    }

    #[test]
    fn bn_fold_structural_when_weightless() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(
            Op::Conv(ConvAttrs::new(3, 6, 3).padding(1).bias(false)),
            [x],
        );
        let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: 6 }), [c]);
        g.set_outputs([bn]);
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(fold_bn_into_conv, &mut g, &mut pm), 1);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn conv_act_fusion_preserves_semantics() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 6, 6]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        g.set_outputs([r]);
        let params = TensorMap::init_random(&g, 4);
        let before = g.clone();
        let bp = params.clone();
        let mut pm = params;
        assert_eq!(apply_once(fuse_conv_act, &mut g, &mut pm), 1);
        g.validate().unwrap();
        assert_eq!(g.len(), 2);
        assert_equiv(&before, &bp, &g, &pm, &[1, 3, 6, 6]);
    }

    #[test]
    fn conv_add_act_fusion_preserves_semantics() {
        // residual block: relu(add(conv(x), x))
        let mut g = Graph::new("t");
        let x = g.input([1, 4, 6, 6]);
        let c = g.add(Op::Conv(ConvAttrs::new(4, 4, 3).padding(1)), [x]);
        let a = g.add(Op::Add, [c, x]);
        let r = g.add(Op::Activation(Activation::Relu), [a]);
        g.set_outputs([r]);
        let params = TensorMap::init_random(&g, 5);
        let before = g.clone();
        let bp = params.clone();
        let mut pm = params;
        assert_eq!(apply_once(fuse_conv_add, &mut g, &mut pm), 1);
        assert_eq!(apply_once(fuse_conv_act, &mut g, &mut pm), 1);
        g.validate().unwrap();
        assert_eq!(g.len(), 2, "conv+add+relu collapsed into one kernel");
        assert_equiv(&before, &bp, &g, &pm, &[1, 4, 6, 6]);
    }

    #[test]
    fn conv_add_fusion_refuses_cycles() {
        // add(conv(x), relu(conv(x))): other input depends on the conv
        let mut g = Graph::new("t");
        let x = g.input([1, 4, 6, 6]);
        let c = g.add(Op::Conv(ConvAttrs::new(4, 4, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        let a = g.add(Op::Add, [c, r]);
        g.set_outputs([a]);
        let mut pm = TensorMap::new();
        // conv is used twice, so fusion must not trigger at all
        assert_eq!(apply_once(fuse_conv_add, &mut g, &mut pm), 0);
        g.validate().unwrap();
    }

    #[test]
    fn add_act_fusion_preserves_semantics() {
        let mut g = Graph::new("t");
        let a = g.input([2, 8]);
        let b = g.input([2, 8]);
        let s = g.add(Op::Add, [a, b]);
        let r = g.add(Op::Activation(Activation::Sigmoid), [s]);
        g.set_outputs([r]);
        let before = g.clone();
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(fuse_add_act, &mut g, &mut pm), 1);
        g.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let x1 = Tensor::random([2, 8], 1.0, &mut rng);
        let x2 = Tensor::random([2, 8], 1.0, &mut rng);
        let empty = TensorMap::new();
        let out_a = Executor::new(&before, &empty)
            .run(&[x1.clone(), x2.clone()])
            .unwrap();
        let out_b = Executor::new(&g, &empty).run(&[x1, x2]).unwrap();
        assert!(out_a[0].allclose(&out_b[0], 1e-6));
    }

    #[test]
    fn gemm_act_fusion() {
        let mut g = Graph::new("t");
        let x = g.input([2, 16]);
        let fc = g.add(Op::Gemm(GemmAttrs::new(16, 8)), [x]);
        let t = g.add(Op::Activation(Activation::Tanh), [fc]);
        g.set_outputs([t]);
        let params = TensorMap::init_random(&g, 8);
        let before = g.clone();
        let bp = params.clone();
        let mut pm = params;
        assert_eq!(apply_once(fuse_gemm_act, &mut g, &mut pm), 1);
        assert_equiv(&before, &bp, &g, &pm, &[2, 16]);
    }

    #[test]
    fn reshape_chain_collapses() {
        let mut g = Graph::new("t");
        let x = g.input([2, 12]);
        let r1 = g.add(
            Op::Reshape {
                shape: Shape::from([4, 6]),
            },
            [x],
        );
        let r2 = g.add(
            Op::Reshape {
                shape: Shape::from([3, 8]),
            },
            [r1],
        );
        g.set_outputs([r2]);
        let before = g.clone();
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(fuse_reshape_chain, &mut g, &mut pm), 1);
        g.validate().unwrap();
        assert_eq!(g.len(), 2);
        assert_equiv(&before, &TensorMap::new(), &g, &pm, &[2, 12]);
    }

    #[test]
    fn transpose_pair_eliminated() {
        let mut g = Graph::new("t");
        let x = g.input([2, 3, 4]);
        let t1 = g.add(
            Op::Transpose {
                perm: vec![2, 0, 1],
            },
            [x],
        );
        let t2 = g.add(
            Op::Transpose {
                perm: vec![1, 2, 0],
            },
            [t1],
        );
        let r = g.add(Op::Activation(Activation::Relu), [t2]);
        g.set_outputs([r]);
        let before = g.clone();
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(eliminate_transpose_pair, &mut g, &mut pm), 1);
        g.validate().unwrap();
        assert_eq!(g.len(), 2);
        assert_equiv(&before, &TensorMap::new(), &g, &pm, &[2, 3, 4]);
    }

    #[test]
    fn non_inverse_transposes_kept() {
        let mut g = Graph::new("t");
        let x = g.input([2, 3, 4]);
        let t1 = g.add(
            Op::Transpose {
                perm: vec![2, 0, 1],
            },
            [x],
        );
        let t2 = g.add(
            Op::Transpose {
                perm: vec![2, 0, 1],
            },
            [t1],
        );
        g.set_outputs([t2]);
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(eliminate_transpose_pair, &mut g, &mut pm), 0);
    }

    #[test]
    fn winograd_rewrite_marks_eligible_convs() {
        let mut g = Graph::new("t");
        let x = g.input([1, 64, 16, 16]);
        let c1 = g.add(Op::Conv(ConvAttrs::new(64, 64, 3).padding(1)), [x]);
        let c2 = g.add(
            Op::Conv(ConvAttrs::new(64, 64, 3).stride(2).padding(1)),
            [c1],
        );
        let c3 = g.add(Op::Conv(ConvAttrs::new(64, 128, 1)), [c2]);
        g.set_outputs([c3]);
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(winograd_rewrite, &mut g, &mut pm), 1);
        assert!(matches!(g.op(c1), Op::Conv(c) if c.algo == ConvAlgo::Winograd));
        assert!(matches!(g.op(c2), Op::Conv(c) if c.algo == ConvAlgo::Direct));
        assert!(matches!(g.op(c3), Op::Conv(c) if c.algo == ConvAlgo::Direct));
    }

    #[test]
    fn cse_merges_identical_branches() {
        let mut g = Graph::new("t");
        let x = g.input([2, 4]);
        let r1 = g.add(Op::Activation(Activation::Relu), [x]);
        let r2 = g.add(Op::Activation(Activation::Relu), [x]);
        let s = g.add(Op::Add, [r1, r2]);
        g.set_outputs([s]);
        let before = g.clone();
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(cse, &mut g, &mut pm), 1);
        g.validate().unwrap();
        assert_eq!(g.len(), 3);
        assert_equiv(&before, &TensorMap::new(), &g, &pm, &[2, 4]);
    }

    #[test]
    fn cse_does_not_merge_valueless_constants() {
        let mut g = Graph::new("t");
        let c1 = g.constant([4]);
        let c2 = g.constant([4]);
        let s = g.add(Op::Add, [c1, c2]);
        g.set_outputs([s]);
        let mut pm = TensorMap::new();
        assert_eq!(apply_once(cse, &mut g, &mut pm), 0);
    }

    #[test]
    fn constant_folding_evaluates_subtrees() {
        let mut g = Graph::new("t");
        let c1 = g.constant([2, 2]);
        let c2 = g.constant([2, 2]);
        let s = g.add(Op::Add, [c1, c2]);
        let x = g.input([2, 2]);
        let out = g.add(Op::Mul, [s, x]);
        g.set_outputs([out]);
        let mut pm = TensorMap::new();
        pm.insert(c1, vec![Tensor::new([2, 2], vec![1.0, 2.0, 3.0, 4.0])]);
        pm.insert(c2, vec![Tensor::new([2, 2], vec![10.0, 20.0, 30.0, 40.0])]);
        assert_eq!(apply_once(constant_fold, &mut g, &mut pm), 1);
        g.prune_dead();
        g.validate().unwrap();
        // the folded constant feeds the Mul
        let mul = g.iter().find(|(_, n)| matches!(n.op, Op::Mul)).unwrap().0;
        let folded = g.node(mul).unwrap().inputs[0];
        let val = &pm.get(folded).unwrap()[0];
        assert_eq!(val.data(), &[11.0, 22.0, 33.0, 44.0]);
    }
}
