//! Functional-equivalence verification of optimizer output.
//!
//! The paper's de-obfuscation step (§4.3) *assumes* the optimizer preserves
//! functional correctness; this module lets the workspace check that
//! assumption mechanically with the reference interpreter.

use proteus_graph::{infer_shapes, Executor, Graph, GraphError, Op, Tensor, TensorMap};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum Equivalence {
    /// Outputs matched within tolerance on every probe.
    Equivalent,
    /// Outputs diverged; carries the worst absolute difference observed.
    Diverged(f32),
}

impl Equivalence {
    /// True when the graphs agreed.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }
}

/// Runs both graphs on `probes` random inputs and compares outputs.
///
/// Input tensors are generated from the *first* graph's `Input` shapes;
/// both graphs must declare identical input signatures (optimizers do not
/// change calling conventions).
///
/// # Errors
/// Propagates interpreter failures (missing parameters, shape errors).
pub fn check_equivalence(
    a: &Graph,
    a_params: &TensorMap,
    b: &Graph,
    b_params: &TensorMap,
    probes: usize,
    tol: f32,
    seed: u64,
) -> Result<Equivalence, GraphError> {
    let _ = infer_shapes(a)?;
    let _ = infer_shapes(b)?;
    let mut input_shapes: Vec<proteus_graph::Shape> = Vec::new();
    let mut ids: Vec<_> = a
        .iter()
        .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
        .map(|(id, _)| id)
        .collect();
    ids.sort();
    for id in ids {
        if let Op::Input { shape } = &a.node(id).expect("live").op {
            input_shapes.push(shape.clone());
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0.0f32;
    for _ in 0..probes {
        let inputs: Vec<Tensor> = input_shapes
            .iter()
            .map(|s| Tensor::random(s.clone(), 1.0, &mut rng))
            .collect();
        let oa = Executor::new(a, a_params).run(&inputs)?;
        let ob = Executor::new(b, b_params).run(&inputs)?;
        if oa.len() != ob.len() {
            return Ok(Equivalence::Diverged(f32::INFINITY));
        }
        for (ta, tb) in oa.iter().zip(&ob) {
            worst = worst.max(ta.max_abs_diff(tb));
        }
    }
    if worst <= tol {
        Ok(Equivalence::Equivalent)
    } else {
        Ok(Equivalence::Diverged(worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewriter::{Optimizer, Profile};
    use proteus_graph::{Activation, ConvAttrs, GemmAttrs, PoolAttrs};

    fn small_net() -> Graph {
        let mut g = Graph::new("net");
        let x = g.input([1, 3, 8, 8]);
        let c = g.add(Op::Conv(ConvAttrs::new(3, 4, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        let p = g.add(Op::MaxPool(PoolAttrs::new(2, 2, 0)), [r]);
        let f = g.add(Op::Flatten, [p]);
        let fc = g.add(Op::Gemm(GemmAttrs::new(64, 5)), [f]);
        g.set_outputs([fc]);
        g
    }

    #[test]
    fn optimizer_output_verifies() {
        let g = small_net();
        let params = TensorMap::init_random(&g, 33);
        for profile in Profile::ALL {
            let (og, op, _) = Optimizer::new(profile).optimize(&g, &params);
            let eq = check_equivalence(&g, &params, &og, &op, 3, 1e-3, 1).unwrap();
            assert!(eq.is_equivalent(), "{profile:?}: {eq:?}");
        }
    }

    #[test]
    fn divergence_is_detected() {
        let g = small_net();
        let params = TensorMap::init_random(&g, 34);
        let other_params = TensorMap::init_random(&g, 35); // different weights
        let eq = check_equivalence(&g, &params, &g, &other_params, 2, 1e-3, 2).unwrap();
        assert!(!eq.is_equivalent());
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_elementwise_graph() -> impl Strategy<Value = Graph> {
            proptest::collection::vec((0u8..6, proptest::num::u64::ANY), 2..25).prop_map(|specs| {
                let mut g = Graph::new("prop");
                let mut ids = vec![g.input([2, 6])];
                for (kind, pick) in specs {
                    let a = ids[(pick as usize) % ids.len()];
                    let b = ids[(pick as usize / 3) % ids.len()];
                    let id = match kind {
                        0 => g.add(Op::Activation(Activation::Relu), [a]),
                        1 => g.add(Op::Activation(Activation::Sigmoid), [a]),
                        2 => g.add(Op::Identity, [a]),
                        3 => g.add(Op::Dropout { p: 20 }, [a]),
                        4 => g.add(Op::Add, [a, b]),
                        _ => g.add(Op::Mul, [a, b]),
                    };
                    ids.push(id);
                }
                let last = *ids.last().expect("nonempty");
                g.set_outputs([last]);
                g
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn optimizer_preserves_semantics_on_random_graphs(
                g in arb_elementwise_graph(),
                profile_idx in 0usize..Profile::ALL.len(),
            ) {
                let params = TensorMap::new();
                let profile = Profile::ALL[profile_idx];
                let (og, op, _) = Optimizer::new(profile).optimize(&g, &params);
                og.validate().unwrap();
                let eq = check_equivalence(&g, &params, &og, &op, 2, 1e-4, 7).unwrap();
                prop_assert!(eq.is_equivalent(), "{:?}", eq);
            }
        }
    }
}
