//! Analytical GPU latency model.
//!
//! The paper measures wall-clock latency of ONNX models on an A100; this
//! reproduction substitutes a roofline-style cost model so that the
//! *relative* effects the paper studies are preserved:
//!
//! - every kernel pays a fixed launch overhead, so at inference batch sizes
//!   graph-level fusion (fewer kernels, less intermediate traffic) is the
//!   dominant win — exactly the optimization class Proteus must preserve;
//! - compute cost is `flops / (peak_flops * utilization)` and memory cost is
//!   `bytes / peak_bandwidth`, a kernel paying the max of the two;
//! - Winograd convolution trades a 2.25x multiply reduction against low
//!   GEMM utilization at small channel counts, reproducing the
//!   "typically-beneficial optimization that harms an exotic model"
//!   phenomenon of the paper's NAS case study (§6.1).
//!
//! Absolute microsecond values are calibrated to be A100-plausible but make
//! no accuracy claim; EXPERIMENTS.md compares shapes, not absolutes.

use proteus_graph::{infer_shapes, ConvAlgo, Graph, GraphError, Op, Shape};

/// Hardware/profile parameters of the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed per-kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Peak sustained FLOP/s.
    pub peak_flops: f64,
    /// Peak sustained memory bandwidth in bytes/s.
    pub peak_bw: f64,
}

impl CostParams {
    /// Parameters resembling ONNXRuntime CUDA kernels on an A100.
    pub fn ort_like() -> CostParams {
        CostParams {
            launch_overhead_us: 5.0,
            peak_flops: 15.0e12,
            peak_bw: 1.3e12,
        }
    }

    /// Parameters resembling Hidet-generated kernels: lower launch cost and
    /// better schedules (Hidet optimizes at the operator level, so graph
    /// partitioning costs it less — the effect behind Figure 4b).
    pub fn hidet_like() -> CostParams {
        CostParams {
            launch_overhead_us: 3.0,
            peak_flops: 17.0e12,
            peak_bw: 1.45e12,
        }
    }

    /// Parameters resembling TVM/Ansor auto-scheduled kernels: tuned
    /// schedules close the per-kernel gap to Hidet, but the generated
    /// launch path is heavier than Hidet's and lighter than ORT's.
    pub fn tvm_like() -> CostParams {
        CostParams {
            launch_overhead_us: 4.0,
            peak_flops: 16.0e12,
            peak_bw: 1.35e12,
        }
    }
}

const BYTES_PER_ELEM: f64 = 4.0;

/// Per-node work estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeWork {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Compute-utilization factor in `(0, 1]`.
    pub utilization: f64,
    /// Number of kernel launches this node costs (0 for free metadata ops
    /// such as `Input`/`Constant`).
    pub kernels: f64,
}

/// Estimates the work of one node given its input/output shapes.
pub fn node_work(op: &Op, ins: &[&Shape], out: &Shape) -> NodeWork {
    let numel_out = out.numel() as f64;
    let in_bytes: f64 = ins.iter().map(|s| s.numel() as f64 * BYTES_PER_ELEM).sum();
    let out_bytes = numel_out * BYTES_PER_ELEM;
    let default_bytes = in_bytes + out_bytes;
    match op {
        Op::Input { .. } | Op::Constant { .. } => NodeWork::default(),
        Op::Conv(c) => {
            let (_, oc, oh, ow) = out.nchw().expect("conv output NCHW");
            let n = out.dims()[0] as f64;
            let macs = n
                * oc as f64
                * oh as f64
                * ow as f64
                * (c.in_channels / c.groups.max(1)) as f64
                * (c.kernel * c.kernel) as f64;
            let weight_bytes =
                (c.out_channels * (c.in_channels / c.groups.max(1)) * c.kernel * c.kernel) as f64
                    * BYTES_PER_ELEM;
            let mut flops = 2.0 * macs;
            let mut bytes = default_bytes + weight_bytes;
            let mut utilization = 1.0;
            if c.algo == ConvAlgo::Winograd {
                // F(2x2,3x3): 2.25x multiply reduction, ~15% extra traffic
                // for tile transforms, and utilization collapsing with the
                // channel product (tiny per-tile GEMMs).
                flops /= 2.25;
                bytes *= 1.15;
                let cc = (c.in_channels * c.out_channels) as f64;
                utilization = (cc / 4096.0).min(1.0).powf(2.5).max(1e-4);
            }
            if c.fused_add {
                flops += numel_out;
            }
            if c.fused_act.is_some() {
                flops += numel_out;
            }
            NodeWork {
                flops,
                bytes,
                utilization,
                kernels: 1.0,
            }
        }
        Op::Gemm(g) => {
            let rows = numel_out / g.out_features as f64;
            let flops = 2.0 * rows * (g.in_features * g.out_features) as f64
                + if g.fused_act.is_some() {
                    numel_out
                } else {
                    0.0
                };
            let weight_bytes = (g.in_features * g.out_features) as f64 * BYTES_PER_ELEM;
            NodeWork {
                flops,
                bytes: default_bytes + weight_bytes,
                utilization: 1.0,
                kernels: 1.0,
            }
        }
        Op::MatMul | Op::MatMulT => {
            let a = ins[0].dims();
            let k = a[a.len() - 1] as f64;
            let flops = 2.0 * numel_out * k;
            NodeWork {
                flops,
                bytes: default_bytes,
                utilization: 1.0,
                kernels: 1.0,
            }
        }
        Op::BatchNorm(_) | Op::LayerNorm(_) => NodeWork {
            flops: 4.0 * numel_out,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::SkipLayerNorm(_) => NodeWork {
            flops: 5.0 * numel_out,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::Activation(_) | Op::Add | Op::Sub | Op::Mul | Op::Div => NodeWork {
            flops: numel_out,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::AddAct(_) => NodeWork {
            flops: 2.0 * numel_out,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::Softmax { .. } => NodeWork {
            flops: 4.0 * numel_out,
            bytes: 2.0 * default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::MaxPool(p) | Op::AveragePool(p) => {
            let flops = numel_out * (p.kernel * p.kernel) as f64;
            NodeWork {
                flops,
                bytes: default_bytes,
                utilization: 1.0,
                kernels: 1.0,
            }
        }
        Op::GlobalAveragePool | Op::ReduceMean { .. } => NodeWork {
            flops: ins[0].numel() as f64,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::Concat { .. } => NodeWork {
            flops: 0.0,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        // Data-movement ops: a kernel that copies the tensor.
        Op::Flatten | Op::Reshape { .. } | Op::Identity | Op::Dropout { .. } => NodeWork {
            flops: 0.0,
            bytes: default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::Transpose { .. } => NodeWork {
            flops: 0.0,
            bytes: 2.0 * default_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
        Op::Gather { .. } => NodeWork {
            flops: 0.0,
            bytes: 2.0 * out_bytes,
            utilization: 1.0,
            kernels: 1.0,
        },
    }
}

/// Latency of one node in microseconds under `params`.
pub fn node_latency_us(work: NodeWork, params: &CostParams) -> f64 {
    if work.kernels == 0.0 {
        return 0.0;
    }
    let compute = work.flops / (params.peak_flops * work.utilization.max(1e-6)) * 1e6;
    let memory = work.bytes / params.peak_bw * 1e6;
    work.kernels * params.launch_overhead_us + compute.max(memory)
}

/// Estimated end-to-end latency of a graph in microseconds.
///
/// # Errors
/// Propagates shape-inference failures (latency of an inconsistent graph is
/// undefined).
pub fn estimate_runtime_us(graph: &Graph, params: &CostParams) -> Result<f64, GraphError> {
    let shapes = infer_shapes(graph)?;
    let mut total = 0.0;
    for (id, node) in graph.iter() {
        let ins: Vec<&Shape> = node.inputs.iter().map(|i| &shapes[i]).collect();
        let work = node_work(&node.op, &ins, &shapes[&id]);
        total += node_latency_us(work, params);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, ConvAttrs, Graph, Op};

    fn conv_graph(attrs: ConvAttrs) -> Graph {
        let mut g = Graph::new("c");
        let x = g.input([1, attrs.in_channels, 32, 32]);
        let c = g.add(Op::Conv(attrs), [x]);
        g.set_outputs([c]);
        g
    }

    #[test]
    fn launch_overhead_dominates_small_ops() {
        let params = CostParams::ort_like();
        let mut g = Graph::new("act");
        let x = g.input([1, 8, 8, 8]);
        let r = g.add(Op::Activation(Activation::Relu), [x]);
        g.set_outputs([r]);
        let t = estimate_runtime_us(&g, &params).unwrap();
        assert!((t - params.launch_overhead_us).abs() < 0.5, "t = {t}");
    }

    #[test]
    fn fusion_reduces_latency() {
        let params = CostParams::ort_like();
        // conv -> relu as two nodes
        let mut g2 = Graph::new("two");
        let x = g2.input([1, 64, 32, 32]);
        let c = g2.add(Op::Conv(ConvAttrs::new(64, 64, 3).padding(1)), [x]);
        let r = g2.add(Op::Activation(Activation::Relu), [c]);
        g2.set_outputs([r]);
        // fused
        let mut g1 = Graph::new("one");
        let x1 = g1.input([1, 64, 32, 32]);
        let mut attrs = ConvAttrs::new(64, 64, 3).padding(1);
        attrs.fused_act = Some(Activation::Relu);
        let cf = g1.add(Op::Conv(attrs), [x1]);
        g1.set_outputs([cf]);
        let t2 = estimate_runtime_us(&g2, &params).unwrap();
        let t1 = estimate_runtime_us(&g1, &params).unwrap();
        assert!(t1 < t2, "fused {t1} >= unfused {t2}");
        assert!(t2 - t1 > params.launch_overhead_us * 0.8);
    }

    #[test]
    fn winograd_helps_wide_convs() {
        let params = CostParams::ort_like();
        let direct = conv_graph(ConvAttrs::new(256, 256, 3).padding(1));
        let mut w = ConvAttrs::new(256, 256, 3).padding(1);
        w.algo = ConvAlgo::Winograd;
        let wino = conv_graph(w);
        let td = estimate_runtime_us(&direct, &params).unwrap();
        let tw = estimate_runtime_us(&wino, &params).unwrap();
        assert!(tw < td, "winograd {tw} should beat direct {td} at 256ch");
    }

    #[test]
    fn winograd_hurts_narrow_convs() {
        let params = CostParams::ort_like();
        let direct = conv_graph(ConvAttrs::new(16, 16, 3).padding(1));
        let mut w = ConvAttrs::new(16, 16, 3).padding(1);
        w.algo = ConvAlgo::Winograd;
        let wino = conv_graph(w);
        let td = estimate_runtime_us(&direct, &params).unwrap();
        let tw = estimate_runtime_us(&wino, &params).unwrap();
        assert!(
            tw > td * 1.2,
            "winograd {tw} should lose to direct {td} at 16ch"
        );
    }

    #[test]
    fn inputs_and_constants_are_free() {
        let params = CostParams::ort_like();
        let mut g = Graph::new("free");
        let _ = g.input([1, 1024]);
        let _ = g.constant([1024, 1024]);
        g.set_outputs([]);
        assert_eq!(estimate_runtime_us(&g, &params).unwrap(), 0.0);
    }

    #[test]
    fn hidet_params_are_faster_per_kernel() {
        let ort = CostParams::ort_like();
        let hidet = CostParams::hidet_like();
        let g = conv_graph(ConvAttrs::new(64, 64, 3).padding(1));
        let to = estimate_runtime_us(&g, &ort).unwrap();
        let th = estimate_runtime_us(&g, &hidet).unwrap();
        assert!(th < to);
    }
}
