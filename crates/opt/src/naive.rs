//! The retained original rewrite engine — the naive-fixpoint baseline.
//!
//! This module is a verbatim retention of the seed's rule sweeps and
//! fixpoint driver: every rule recomputes `use_counts()` / `topo_order()` /
//! `infer_shapes()` from scratch as `HashMap<NodeId, _>` allocations, CSE
//! keys are debug-formatted strings, and the driver blindly re-runs every
//! rule each iteration. It exists for two reasons:
//!
//! 1. **Measurement baseline** — `crates/bench/src/bin/perf.rs` reports the
//!    worklist engine's speedup against this implementation, so the number
//!    tracks "new engine vs. old engine", not a moving target.
//! 2. **Parity oracle** — the engine-parity tests assert the worklist
//!    engine produces bit-identical graphs to this independent
//!    implementation on every model, which is a far stronger check than
//!    comparing two schedulers over shared sweep code.
//!
//! Do not "improve" this module; that would silently re-baseline the perf
//! trajectory. Fixes belong in [`crate::rules`].

use proteus_graph::{Activation, ConvAlgo, Executor, Graph, NodeId, Op, Shape, Tensor, TensorMap};
use std::collections::{HashMap, HashSet};

/// A rewrite rule: sweeps the graph once, returns how many sites changed.
type LegacyRule = fn(&mut Graph, &mut TensorMap) -> usize;

/// Number of consumers of each node, counting graph outputs as consumers.
fn use_counts(g: &Graph) -> HashMap<NodeId, usize> {
    g.use_counts()
}

/// All ancestors of `node` (transitive inputs).
fn ancestors(g: &Graph, node: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        if let Some(n) = g.node(id) {
            for &inp in &n.inputs {
                if out.insert(inp) {
                    stack.push(inp);
                }
            }
        }
    }
    out
}

/// Removes `Identity` nodes and `Reshape`s whose output equals their input
/// shape (ONNXRuntime "Identity Elimination").
fn eliminate_identity(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let shapes = proteus_graph::infer_shapes(g).ok();
    let victims: Vec<NodeId> = g
        .iter()
        .filter(|(id, n)| match &n.op {
            Op::Identity => true,
            Op::Reshape { shape } => {
                shapes
                    .as_ref()
                    .map(|s| &s[&n.inputs[0]] == shape)
                    .unwrap_or(false)
                    && {
                        let _ = id;
                        true
                    }
            }
            _ => false,
        })
        .map(|(id, _)| id)
        .collect();
    for id in &victims {
        let input = g.node(*id).expect("live").inputs[0];
        g.replace_uses(*id, input);
        g.remove(*id);
    }
    victims.len()
}

/// Removes inference-mode `Dropout` nodes.
fn eliminate_dropout(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let victims: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| matches!(n.op, Op::Dropout { .. }))
        .map(|(id, _)| id)
        .collect();
    for id in &victims {
        let input = g.node(*id).expect("live").inputs[0];
        g.replace_uses(*id, input);
        g.remove(*id);
    }
    victims.len()
}

/// Folds `BatchNorm(Conv(x))` into the convolution (weight rewrite when
/// parameters are present; structural fold when both are weightless).
fn fold_bn_into_conv(g: &mut Graph, params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId)> = g
        .iter()
        .filter_map(|(bn_id, bn)| match &bn.op {
            Op::BatchNorm(_) => {
                let conv_id = bn.inputs[0];
                match g.node(conv_id).map(|n| &n.op) {
                    Some(Op::Conv(c))
                        if uses[&conv_id] == 1 && c.fused_act.is_none() && !c.fused_add =>
                    {
                        Some((bn_id, conv_id))
                    }
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let mut applied = 0;
    for (bn_id, conv_id) in candidates {
        let conv_has = params.get(conv_id).is_some();
        let bn_has = params.get(bn_id).is_some();
        if conv_has != bn_has {
            continue; // cannot fold half-parameterized patterns safely
        }
        if conv_has {
            let bn_p = params.get(bn_id).expect("checked").to_vec();
            let (scale, bias, mean, var) = (&bn_p[0], &bn_p[1], &bn_p[2], &bn_p[3]);
            let conv_p = params.get(conv_id).expect("checked").to_vec();
            let mut w = conv_p[0].clone();
            let out_ch = w.shape().dims()[0];
            let per_out = w.shape().numel() / out_ch;
            const EPS: f32 = 1e-5;
            let factors: Vec<f32> = (0..out_ch)
                .map(|c| scale.data()[c] / (var.data()[c] + EPS).sqrt())
                .collect();
            for (oc, &f) in factors.iter().enumerate() {
                for i in 0..per_out {
                    w.data_mut()[oc * per_out + i] *= f;
                }
            }
            let old_bias = conv_p.get(1).cloned();
            let mut b = Tensor::zeros([out_ch]);
            for (oc, &f) in factors.iter().enumerate() {
                let b0 = old_bias.as_ref().map(|t| t.data()[oc]).unwrap_or(0.0);
                b.data_mut()[oc] = (b0 - mean.data()[oc]) * f + bias.data()[oc];
            }
            params.insert(conv_id, vec![w, b]);
        }
        if let Some(node) = g.node_mut(conv_id) {
            if let Op::Conv(c) = &mut node.op {
                // The fold materializes a bias tensor exactly when the
                // pattern carried parameters; structural (param-less) folds
                // leave the conv unbiased.
                c.has_bias = conv_has;
            }
        }
        params.remove(bn_id);
        g.replace_uses(bn_id, conv_id);
        g.remove(bn_id);
        applied += 1;
    }
    applied
}

/// Fuses `Act(Conv(x))` into the convolution's epilogue.
fn fuse_conv_act(g: &mut Graph, _params: &mut TensorMap) -> usize {
    fuse_act_into(
        g,
        |op| matches!(op, Op::Conv(c) if c.fused_act.is_none()),
        |op, act| {
            if let Op::Conv(c) = op {
                c.fused_act = Some(act);
            }
        },
    )
}

/// Fuses `Act(Gemm(x))` into the GEMM epilogue.
fn fuse_gemm_act(g: &mut Graph, _params: &mut TensorMap) -> usize {
    fuse_act_into(
        g,
        |op| matches!(op, Op::Gemm(a) if a.fused_act.is_none()),
        |op, act| {
            if let Op::Gemm(a) = op {
                a.fused_act = Some(act);
            }
        },
    )
}

fn fuse_act_into(
    g: &mut Graph,
    eligible: impl Fn(&Op) -> bool,
    set_act: impl Fn(&mut Op, Activation),
) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId, Activation)> = g
        .iter()
        .filter_map(|(act_id, n)| match &n.op {
            Op::Activation(a) => {
                let prod = n.inputs[0];
                match g.node(prod) {
                    Some(p) if eligible(&p.op) && uses[&prod] == 1 => Some((act_id, prod, *a)),
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let count = candidates.len();
    for (act_id, prod, act) in candidates {
        // recheck liveness (earlier rewrites in this sweep may invalidate)
        if g.node(act_id).is_none() || g.node(prod).is_none() {
            continue;
        }
        set_act(&mut g.node_mut(prod).expect("live").op, act);
        g.replace_uses(act_id, prod);
        g.remove(act_id);
    }
    count
}

/// Fuses `Add(Conv(x), y)` (residual add) into the convolution when `y`
/// does not depend on the convolution. The fused activation slot must still
/// be empty so the `conv -> add -> act` order is preserved.
fn fuse_conv_add(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let mut applied = 0;
    let adds: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| matches!(n.op, Op::Add))
        .map(|(id, _)| id)
        .collect();
    for add_id in adds {
        let Some(add) = g.node(add_id) else { continue };
        let (a, b) = (add.inputs[0], add.inputs[1]);
        let pick = |g: &Graph, conv: NodeId, other: NodeId| -> bool {
            matches!(
                g.node(conv).map(|n| &n.op),
                Some(Op::Conv(c)) if !c.fused_add && c.fused_act.is_none()
            ) && uses[&conv] == 1
                && !ancestors(g, other).contains(&conv)
                && conv != other
        };
        let (conv_id, other) = if pick(g, a, b) {
            (a, b)
        } else if pick(g, b, a) {
            (b, a)
        } else {
            continue;
        };
        if let Op::Conv(c) = &mut g.node_mut(conv_id).expect("live").op {
            c.fused_add = true;
        }
        g.node_mut(conv_id).expect("live").inputs.push(other);
        g.replace_uses(add_id, conv_id);
        g.remove(add_id);
        applied += 1;
    }
    applied
}

/// Fuses `Act(Add(a, b))` into a single [`Op::AddAct`] kernel.
fn fuse_add_act(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId, Activation)> = g
        .iter()
        .filter_map(|(act_id, n)| match &n.op {
            Op::Activation(a) => {
                let prod = n.inputs[0];
                match g.node(prod).map(|p| &p.op) {
                    Some(Op::Add) if uses[&prod] == 1 => Some((act_id, prod, *a)),
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let count = candidates.len();
    for (act_id, add_id, act) in candidates {
        if g.node(act_id).is_none() || g.node(add_id).is_none() {
            continue;
        }
        g.node_mut(add_id).expect("live").op = Op::AddAct(act);
        g.replace_uses(act_id, add_id);
        g.remove(act_id);
    }
    count
}

/// Fuses `LayerNorm(Add(a, b))` into a single [`Op::SkipLayerNorm`] kernel
/// (ONNXRuntime's SkipLayerNormalization, the dominant transformer fusion).
fn fuse_skip_layernorm(g: &mut Graph, params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId)> = g
        .iter()
        .filter_map(|(ln_id, n)| match &n.op {
            Op::LayerNorm(_) => {
                let add_id = n.inputs[0];
                match g.node(add_id).map(|p| &p.op) {
                    Some(Op::Add) if uses[&add_id] == 1 => Some((ln_id, add_id)),
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let count = candidates.len();
    for (ln_id, add_id) in candidates {
        if g.node(ln_id).is_none() || g.node(add_id).is_none() {
            continue;
        }
        let attrs = match &g.node(ln_id).expect("live").op {
            Op::LayerNorm(l) => l.clone(),
            _ => continue,
        };
        g.node_mut(add_id).expect("live").op = Op::SkipLayerNorm(attrs);
        if let Some(p) = params.remove(ln_id) {
            params.insert(add_id, p);
        }
        g.replace_uses(ln_id, add_id);
        g.remove(ln_id);
    }
    count
}

/// Fuses `MatMul(a, Transpose(b))` (transpose of the last two dims) into a
/// single [`Op::MatMulT`] (ONNXRuntime's FusedMatMul with `transB`), the
/// Q·Kᵀ pattern of attention.
fn fuse_matmul_transpose(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId)> = g
        .iter()
        .filter_map(|(mm_id, n)| match &n.op {
            Op::MatMul => {
                let t_id = n.inputs[1];
                match g.node(t_id).map(|p| &p.op) {
                    Some(Op::Transpose { perm }) if uses[&t_id] == 1 => {
                        let r = perm.len();
                        let swaps_last_two = r >= 2
                            && perm[..r - 2].iter().enumerate().all(|(i, &p)| p == i)
                            && perm[r - 2] == r - 1
                            && perm[r - 1] == r - 2;
                        if swaps_last_two {
                            Some((mm_id, t_id))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let count = candidates.len();
    for (mm_id, t_id) in candidates {
        if g.node(mm_id).is_none() || g.node(t_id).is_none() {
            continue;
        }
        let src = g.node(t_id).expect("live").inputs[0];
        let mm = g.node_mut(mm_id).expect("live");
        mm.op = Op::MatMulT;
        mm.inputs[1] = src;
        g.remove(t_id);
    }
    count
}

/// Collapses `Reshape(Reshape(x))` chains (ONNXRuntime "Reshape Fusion").
fn fuse_reshape_chain(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let candidates: Vec<(NodeId, NodeId)> = g
        .iter()
        .filter_map(|(outer, n)| match &n.op {
            Op::Reshape { .. } => {
                let inner = n.inputs[0];
                match g.node(inner).map(|p| &p.op) {
                    Some(Op::Reshape { .. }) if uses[&inner] == 1 => Some((outer, inner)),
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    let count = candidates.len();
    for (outer, inner) in candidates {
        if g.node(outer).is_none() || g.node(inner).is_none() {
            continue;
        }
        let src = g.node(inner).expect("live").inputs[0];
        g.node_mut(outer).expect("live").inputs = vec![src];
        g.remove(inner);
    }
    count
}

/// Eliminates inverse `Transpose(Transpose(x))` pairs.
fn eliminate_transpose_pair(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let uses = use_counts(g);
    let mut applied = 0;
    let candidates: Vec<(NodeId, NodeId)> = g
        .iter()
        .filter_map(|(outer, n)| match &n.op {
            Op::Transpose { perm: p2 } => {
                let inner = n.inputs[0];
                match g.node(inner).map(|p| &p.op) {
                    Some(Op::Transpose { perm: p1 }) if uses[&inner] == 1 => {
                        // p2 ∘ p1 == identity?
                        let identity = p2.iter().enumerate().all(|(i, &x)| p1[x] == i);
                        if identity {
                            Some((outer, inner))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        })
        .collect();
    for (outer, inner) in candidates {
        if g.node(outer).is_none() || g.node(inner).is_none() {
            continue;
        }
        let src = g.node(inner).expect("live").inputs[0];
        g.replace_uses(outer, src);
        g.remove(outer);
        g.remove(inner);
        applied += 1;
    }
    applied
}

/// Switches eligible 3x3/stride-1/ungrouped convolutions to the Winograd
/// algorithm. This mirrors a "typically beneficial" library heuristic tuned
/// on ImageNet-scale models: at the small channel counts of NAS cells the
/// transform utilization collapses and the rewrite backfires (paper §6.1).
fn winograd_rewrite(g: &mut Graph, _params: &mut TensorMap) -> usize {
    let mut applied = 0;
    let ids: Vec<NodeId> = g.node_ids();
    for id in ids {
        if let Some(node) = g.node_mut(id) {
            if let Op::Conv(c) = &mut node.op {
                if c.kernel == 3 && c.stride == 1 && c.groups == 1 && c.algo == ConvAlgo::Direct {
                    c.algo = ConvAlgo::Winograd;
                    applied += 1;
                }
            }
        }
    }
    applied
}

/// Common-subexpression elimination: merges nodes with identical operators
/// and identical inputs. `Input` nodes never merge; `Constant`s merge only
/// when their values are present and bit-identical.
fn cse(g: &mut Graph, params: &mut TensorMap) -> usize {
    let Ok(order) = g.topo_order() else { return 0 };
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    let mut applied = 0;
    for id in order {
        let Some(node) = g.node(id) else { continue };
        if matches!(node.op, Op::Input { .. }) {
            continue;
        }
        // Parameterized nodes (Conv, Gemm, BN, Constant, ...) compute with
        // their own weights: two such nodes are the same expression only if
        // their parameter tensors are present and bit-identical.
        let key = if proteus_graph::exec::param_signature(&node.op).is_empty() {
            format!("{:?}|{:?}", node.op, node.inputs)
        } else {
            match params.get(id) {
                Some(t) => format!("{:?}|{:?}|{:?}", node.op, node.inputs, t),
                None => continue,
            }
        };
        match seen.get(&key) {
            Some(&canon) => {
                g.replace_uses(id, canon);
                params.remove(id);
                g.remove(id);
                applied += 1;
            }
            None => {
                seen.insert(key, id);
            }
        }
    }
    applied
}

/// Constant folding: evaluates nodes whose inputs are all value-carrying
/// `Constant`s and replaces them with a new `Constant`.
fn constant_fold(g: &mut Graph, params: &mut TensorMap) -> usize {
    let Ok(order) = g.topo_order() else { return 0 };
    let mut applied = 0;
    for id in order {
        let Some(node) = g.node(id) else { continue };
        if matches!(node.op, Op::Constant { .. } | Op::Input { .. }) || node.inputs.is_empty() {
            continue;
        }
        let all_const = node.inputs.iter().all(|&i| {
            matches!(g.node(i).map(|n| &n.op), Some(Op::Constant { .. })) && params.get(i).is_some()
        });
        if !all_const {
            continue;
        }
        // ops with their own parameters need those too
        if !proteus_graph::exec::param_signature(&node.op).is_empty() && params.get(id).is_none() {
            continue;
        }
        // Build a tiny graph: clone constants + this node, execute.
        let mut tmp = Graph::new("fold");
        let mut tmp_params = TensorMap::new();
        let mut input_map = Vec::new();
        for &i in &node.inputs {
            let shape = match g.node(i).map(|n| &n.op) {
                Some(Op::Constant { shape }) => shape.clone(),
                _ => unreachable!("checked all_const"),
            };
            let c = tmp.constant(shape);
            tmp_params.insert(c, params.get(i).expect("checked").to_vec());
            input_map.push(c);
        }
        let n = tmp.add(node.op.clone(), input_map);
        if let Some(p) = params.get(id) {
            tmp_params.insert(n, p.to_vec());
        }
        tmp.set_outputs([n]);
        let Ok(result) = Executor::new(&tmp, &tmp_params).run(&[]) else {
            continue;
        };
        let value = result.into_iter().next().expect("one output");
        let shape: Shape = value.shape().clone();
        let folded = g.add(Op::Constant { shape }, []);
        params.insert(folded, vec![value]);
        params.remove(id);
        g.replace_uses(id, folded);
        g.remove(id);
        applied += 1;
    }
    applied
}

/// The original fixpoint driver: every rule, every iteration, until a full
/// pass changes nothing (capped at the shared iteration limit). `totals`
/// is indexed like `rules`; returns the executed pass count.
pub(crate) fn run_fixpoint(
    g: &mut Graph,
    p: &mut TensorMap,
    rules: &[crate::rewriter::RuleSpec],
    totals: &mut [usize],
) -> usize {
    let legacy: Vec<LegacyRule> = rules.iter().map(|r| by_name(r.name)).collect();
    let mut iterations = 0;
    for _ in 0..crate::rewriter::MAX_ITERS {
        iterations += 1;
        let mut changed = 0usize;
        for (i, rule) in legacy.iter().enumerate() {
            let n = rule(g, p);
            totals[i] += n;
            changed += n;
        }
        if changed == 0 {
            break;
        }
    }
    g.take_dirty_ops();
    iterations
}

/// Resolves a rule name from the shared catalog to its retained legacy
/// implementation.
fn by_name(name: &str) -> LegacyRule {
    match name {
        "eliminate_identity" => eliminate_identity,
        "eliminate_dropout" => eliminate_dropout,
        "constant_fold" => constant_fold,
        "fold_bn_into_conv" => fold_bn_into_conv,
        "fuse_conv_add" => fuse_conv_add,
        "fuse_conv_act" => fuse_conv_act,
        "fuse_gemm_act" => fuse_gemm_act,
        "fuse_add_act" => fuse_add_act,
        "fuse_skip_layernorm" => fuse_skip_layernorm,
        "fuse_matmul_transpose" => fuse_matmul_transpose,
        "fuse_reshape_chain" => fuse_reshape_chain,
        "eliminate_transpose_pair" => eliminate_transpose_pair,
        "cse" => cse,
        "winograd_rewrite" => winograd_rewrite,
        other => panic!("no retained legacy implementation for rule `{other}`"),
    }
}
