//! The optimizer driver: profiles, the worklist rewrite engine (plus the
//! retained naive-fixpoint baseline), and latency estimation.

use crate::cost::{estimate_runtime_us, CostParams};
use crate::rules::{self, RewriteCtx, Rule};
use proteus_graph::{Graph, GraphAnalysis, GraphError, OpCode, TensorMap};

/// Which optimizer the driver emulates (paper §5.1 evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Profile {
    /// ONNXRuntime-style: the full graph-level rule set, including
    /// speculative algorithm selection (Winograd).
    #[default]
    OrtLike,
    /// Hidet-style: a leaner graph-level set (Hidet pushes most work to
    /// operator-level scheduling), with faster per-kernel parameters.
    HidetLike,
    /// TVM-style: a layout-first rule mix — data-movement cleanups
    /// (reshape chains, transpose pairs) run *before* the fusion passes,
    /// mirroring Relay's canonicalization-then-fuse pipeline, and the
    /// speculative Winograd selection is left to the auto-scheduler (so it
    /// is absent here). Distinct rule subset, distinct anchor ordering.
    TvmLike,
}

impl Profile {
    /// Every profile, in a stable order (the order reports iterate).
    pub const ALL: [Profile; 3] = [Profile::OrtLike, Profile::HidetLike, Profile::TvmLike];

    /// The cost-model parameters of this profile.
    pub fn cost_params(self) -> CostParams {
        match self {
            Profile::OrtLike => CostParams::ort_like(),
            Profile::HidetLike => CostParams::hidet_like(),
            Profile::TvmLike => CostParams::tvm_like(),
        }
    }

    /// The rewrite rules of this profile, in application order.
    pub fn rules(self) -> Vec<RuleSpec> {
        let all = RuleSpec::catalog();
        let pick = |names: &[&str]| -> Vec<RuleSpec> {
            names
                .iter()
                .map(|n| {
                    *all.iter()
                        .find(|r| r.name == *n)
                        .expect("profile names a cataloged rule")
                })
                .collect()
        };
        match self {
            Profile::OrtLike => pick(&[
                "eliminate_identity",
                "eliminate_dropout",
                "constant_fold",
                "fold_bn_into_conv",
                "fuse_conv_add",
                "fuse_conv_act",
                "fuse_gemm_act",
                "fuse_add_act",
                "fuse_skip_layernorm",
                "fuse_matmul_transpose",
                "fuse_reshape_chain",
                "eliminate_transpose_pair",
                "cse",
                "winograd_rewrite",
            ]),
            Profile::HidetLike => pick(&[
                "eliminate_identity",
                "eliminate_dropout",
                "constant_fold",
                "fold_bn_into_conv",
                "fuse_conv_act",
                "fuse_gemm_act",
                "cse",
            ]),
            Profile::TvmLike => pick(&[
                "eliminate_identity",
                "fuse_reshape_chain",
                "eliminate_transpose_pair",
                "fuse_matmul_transpose",
                "eliminate_dropout",
                "constant_fold",
                "fold_bn_into_conv",
                "fuse_conv_add",
                "fuse_conv_act",
                "fuse_gemm_act",
                "fuse_add_act",
                "cse",
            ]),
        }
    }

    /// Table name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Profile::OrtLike => "onnxruntime-like",
            Profile::HidetLike => "hidet-like",
            Profile::TvmLike => "tvm-like",
        }
    }
}

/// Which opcodes can possibly enable a rule: the opcode of every node the
/// rule's match predicate examines (the anchor it scans for plus the
/// neighbors whose op or fan-out it inspects). The worklist engine re-runs
/// a rule only when a mutation has touched one of its anchor opcodes.
#[derive(Debug, Clone, Copy)]
pub enum Anchors {
    /// Any mutation can enable the rule (global sweeps such as CSE and
    /// constant folding, whose matches depend on arbitrary nodes and
    /// parameter tensors).
    Any,
    /// Only mutations touching these opcodes can enable the rule.
    Ops(&'static [OpCode]),
    /// `Ops`, extended with every activation opcode (for the `Act(x)`
    /// fusion rules).
    OpsAndActivations(&'static [OpCode]),
}

impl Anchors {
    /// Bitmask over [`OpCode::index`] — compared against
    /// [`Graph::take_dirty_ops`] masks.
    pub fn mask(self) -> u64 {
        let ops_mask = |ops: &[OpCode]| ops.iter().fold(0u64, |m, c| m | (1u64 << c.index()));
        match self {
            Anchors::Any => !0,
            Anchors::Ops(ops) => ops_mask(ops),
            Anchors::OpsAndActivations(ops) => ops_mask(ops) | ops_mask(&OpCode::ACTIVATIONS),
        }
    }
}

/// One rewrite rule plus the metadata the engine schedules it by.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable rule name (used in [`OptimizeStats::rewrites`]).
    pub name: &'static str,
    /// The sweep itself.
    pub apply: Rule,
    /// Which opcodes can enable this rule.
    pub anchors: Anchors,
}

impl RuleSpec {
    /// Every known rule with its anchor set. Profiles pick ordered subsets
    /// of this catalog.
    pub fn catalog() -> Vec<RuleSpec> {
        let spec = |name, apply, anchors| RuleSpec {
            name,
            apply,
            anchors,
        };
        vec![
            spec(
                "eliminate_identity",
                rules::eliminate_identity as Rule,
                Anchors::Ops(&[OpCode::Identity, OpCode::Reshape]),
            ),
            spec(
                "eliminate_dropout",
                rules::eliminate_dropout,
                Anchors::Ops(&[OpCode::Dropout]),
            ),
            spec("constant_fold", rules::constant_fold, Anchors::Any),
            spec(
                "fold_bn_into_conv",
                rules::fold_bn_into_conv,
                Anchors::Ops(&[OpCode::BatchNorm, OpCode::Conv]),
            ),
            spec(
                "fuse_conv_add",
                rules::fuse_conv_add,
                Anchors::Ops(&[OpCode::Add, OpCode::Conv]),
            ),
            spec(
                "fuse_conv_act",
                rules::fuse_conv_act,
                Anchors::OpsAndActivations(&[OpCode::Conv]),
            ),
            spec(
                "fuse_gemm_act",
                rules::fuse_gemm_act,
                Anchors::OpsAndActivations(&[OpCode::Gemm]),
            ),
            spec(
                "fuse_add_act",
                rules::fuse_add_act,
                Anchors::OpsAndActivations(&[OpCode::Add]),
            ),
            spec(
                "fuse_skip_layernorm",
                rules::fuse_skip_layernorm,
                Anchors::Ops(&[OpCode::LayerNorm, OpCode::Add]),
            ),
            spec(
                "fuse_matmul_transpose",
                rules::fuse_matmul_transpose,
                Anchors::Ops(&[OpCode::MatMul, OpCode::Transpose]),
            ),
            spec(
                "fuse_reshape_chain",
                rules::fuse_reshape_chain,
                Anchors::Ops(&[OpCode::Reshape]),
            ),
            spec(
                "eliminate_transpose_pair",
                rules::eliminate_transpose_pair,
                Anchors::Ops(&[OpCode::Transpose]),
            ),
            spec("cse", rules::cse, Anchors::Any),
            spec(
                "winograd_rewrite",
                rules::winograd_rewrite,
                Anchors::Ops(&[OpCode::Conv]),
            ),
        ]
    }
}

/// Which rewrite engine drives the fixpoint (both produce bit-identical
/// optimized graphs; the parity tests in `tests/engine_parity.rs` enforce
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Dirty-opcode worklist: analyses cached per graph generation, rules
    /// re-run only when a mutation touched one of their anchor opcodes.
    #[default]
    Worklist,
    /// The seed's engine, retained verbatim in `crates/opt/src/naive.rs`:
    /// every rule every iteration, each sweep recomputing its
    /// `HashMap`-based analyses from scratch. The measurement baseline
    /// (`BENCH_opt.json` compares against it) and the independent parity
    /// oracle.
    NaiveFixpoint,
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizeStats {
    /// Total rewrites applied, per rule name.
    pub rewrites: Vec<(String, usize)>,
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Node count before and after.
    pub nodes_before: usize,
    pub nodes_after: usize,
}

/// A graph-level optimizer (the "optimizer party" of the paper).
///
/// The handle owns its profile's rule catalog, resolved once at
/// construction — in the streaming protocol one `Optimizer` is reused
/// across every [`Optimizer::optimize`] call (all members of all frames),
/// so per-call catalog rebuilds are off the hot path.
#[derive(Debug, Clone)]
pub struct Optimizer {
    profile: Profile,
    engine: Engine,
    rules: Vec<RuleSpec>,
}

impl Default for Optimizer {
    fn default() -> Optimizer {
        Optimizer::new(Profile::default())
    }
}

/// Iteration cap shared by both engines. The naive engine runs at most this
/// many full passes; the worklist engine at most this many rounds (a round
/// is the worklist equivalent of one pass, with clean rules skipped), so
/// even non-converging inputs produce identical graphs.
pub(crate) const MAX_ITERS: usize = 12;

impl Optimizer {
    /// Creates an optimizer with the given profile and the default
    /// (worklist) engine.
    pub fn new(profile: Profile) -> Optimizer {
        Optimizer::with_engine(profile, Engine::default())
    }

    /// Creates an optimizer with an explicit engine.
    pub fn with_engine(profile: Profile, engine: Engine) -> Optimizer {
        Optimizer {
            profile,
            engine,
            rules: profile.rules(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The active rewrite engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The rule catalog this handle applies, in application order.
    pub fn rules(&self) -> &[RuleSpec] {
        &self.rules
    }

    /// Optimizes a graph to fixpoint. Returns the optimized graph (compacted
    /// and dead-code-pruned), its parameters, and rewrite statistics.
    ///
    /// The input is never mutated — the optimizer party works on its own
    /// copy, as in the paper's threat model.
    pub fn optimize(&self, graph: &Graph, params: &TensorMap) -> (Graph, TensorMap, OptimizeStats) {
        let mut g = graph.clone();
        let mut p = params.clone();
        let rules = &self.rules;
        let mut stats = OptimizeStats {
            nodes_before: g.len(),
            ..Default::default()
        };
        let mut totals = vec![0usize; rules.len()];
        stats.iterations = match self.engine {
            Engine::Worklist => run_worklist(&mut g, &mut p, rules, &mut totals),
            Engine::NaiveFixpoint => crate::naive::run_fixpoint(&mut g, &mut p, rules, &mut totals),
        };
        g.prune_dead();
        let (compacted, mapping) = g.compact();
        // remap parameters to compacted ids
        let mut new_params = TensorMap::new();
        for (old, new) in &mapping {
            if let Some(t) = p.get(*old) {
                new_params.insert(*new, t.to_vec());
            }
        }
        stats.nodes_after = compacted.len();
        stats.rewrites = rules
            .iter()
            .zip(totals)
            .map(|(rule, n)| (rule.name.to_string(), n))
            .collect();
        (compacted, new_params, stats)
    }

    /// Estimated latency (µs) of a graph under this profile's cost model.
    ///
    /// # Errors
    /// Propagates shape-inference failures.
    pub fn estimate_us(&self, graph: &Graph) -> Result<f64, GraphError> {
        estimate_runtime_us(graph, &self.profile.cost_params())
    }

    /// Convenience: `(unoptimized_us, optimized_us, speedup)` for a graph.
    ///
    /// # Errors
    /// Propagates shape-inference failures.
    pub fn speedup(&self, graph: &Graph, params: &TensorMap) -> Result<SpeedupReport, GraphError> {
        let before = self.estimate_us(graph)?;
        let (opt, _, stats) = self.optimize(graph, params);
        let after = self.estimate_us(&opt)?;
        Ok(SpeedupReport {
            unoptimized_us: before,
            optimized_us: after,
            stats,
        })
    }
}

/// The worklist engine. Rules run in profile order, but a rule is skipped
/// when no mutation since its last run touched one of its anchor opcodes —
/// its previous sweep already proved there is nothing to do. The analysis
/// snapshot is recomputed only when the graph generation moved, so quiet
/// stretches of the rule list share one snapshot. Returns the number of
/// rounds in which at least one rule ran.
///
/// Round `k` applies exactly the rewrites naive pass `k` applies (skips are
/// provably no-ops), so both engines yield bit-identical graphs — including
/// at the shared iteration cap.
fn run_worklist(
    g: &mut Graph,
    p: &mut TensorMap,
    rules: &[RuleSpec],
    totals: &mut [usize],
) -> usize {
    let masks: Vec<u64> = rules.iter().map(|r| r.anchors.mask()).collect();
    // Opcodes dirtied since each rule last ran. Everything starts dirty
    // (construction-time dirt in the clone is discarded — the first round
    // runs every rule regardless).
    let mut pending: Vec<u64> = vec![!0u64; rules.len()];
    g.take_dirty_ops();
    let mut analysis = GraphAnalysis::compute(g);
    let mut rounds = 0;
    for _ in 0..MAX_ITERS {
        if pending
            .iter()
            .zip(&masks)
            .all(|(&pend, &mask)| pend & mask == 0)
        {
            break;
        }
        rounds += 1;
        for (i, rule) in rules.iter().enumerate() {
            if pending[i] & masks[i] == 0 {
                continue;
            }
            if !analysis.is_fresh(g) {
                analysis = GraphAnalysis::compute(g);
            } else {
                analysis.assert_fresh(g);
            }
            pending[i] = 0;
            let n = (rule.apply)(&mut RewriteCtx {
                graph: g,
                params: p,
                analysis: &analysis,
            });
            totals[i] += n;
            let dirt = g.take_dirty_ops();
            if dirt != 0 {
                for pend in pending.iter_mut() {
                    *pend |= dirt;
                }
            }
        }
    }
    // In debug builds, verify the skip logic against ground truth: at
    // quiescence every rule must be a no-op. A failure here means a rule
    // mutated state the dirty tracking missed.
    #[cfg(debug_assertions)]
    if rounds < MAX_ITERS {
        for rule in rules {
            let analysis = GraphAnalysis::compute(g);
            let n = (rule.apply)(&mut RewriteCtx {
                graph: g,
                params: p,
                analysis: &analysis,
            });
            assert_eq!(
                n, 0,
                "worklist engine quiesced while rule `{}` still applies — \
                 a mutation escaped the dirty-opcode tracking",
                rule.name
            );
            g.take_dirty_ops();
        }
    }
    rounds
}

/// Result of [`Optimizer::speedup`].
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    pub unoptimized_us: f64,
    pub optimized_us: f64,
    pub stats: OptimizeStats,
}

impl SpeedupReport {
    /// `unoptimized / optimized` (>1 means the optimizer helped).
    pub fn speedup(&self) -> f64 {
        self.unoptimized_us / self.optimized_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, Executor, Op, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn residual_block() -> Graph {
        let mut g = Graph::new("block");
        let x = g.input([1, 32, 8, 8]);
        let c1 = g.add(
            Op::Conv(ConvAttrs::new(32, 32, 3).padding(1).bias(false)),
            [x],
        );
        let b1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 32 }), [c1]);
        let r1 = g.add(Op::Activation(Activation::Relu), [b1]);
        let c2 = g.add(
            Op::Conv(ConvAttrs::new(32, 32, 3).padding(1).bias(false)),
            [r1],
        );
        let b2 = g.add(Op::BatchNorm(BatchNormAttrs { channels: 32 }), [c2]);
        let a = g.add(Op::Add, [b2, x]);
        let r2 = g.add(Op::Activation(Activation::Relu), [a]);
        let d = g.add(Op::Dropout { p: 10 }, [r2]);
        g.set_outputs([d]);
        g
    }

    #[test]
    fn optimize_residual_block_collapses_kernels() {
        let g = residual_block();
        let params = TensorMap::init_random(&g, 21);
        let opt = Optimizer::new(Profile::OrtLike);
        let (og, op, stats) = opt.optimize(&g, &params);
        og.validate().unwrap();
        // conv-bn-relu + conv-bn-add-relu + dropout: collapses to 2 convs
        assert_eq!(og.len(), 3, "{og:#?}");
        assert!(stats.nodes_before > stats.nodes_after);

        // semantics preserved
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::random([1, 32, 8, 8], 1.0, &mut rng);
        let a = Executor::new(&g, &params)
            .run(std::slice::from_ref(&x))
            .unwrap();
        let b = Executor::new(&og, &op).run(&[x]).unwrap();
        assert!(
            a[0].allclose(&b[0], 1e-3),
            "max diff {}",
            a[0].max_abs_diff(&b[0])
        );
    }

    #[test]
    fn optimization_improves_estimated_latency() {
        let g = residual_block();
        let params = TensorMap::init_random(&g, 5);
        let opt = Optimizer::new(Profile::OrtLike);
        let report = opt.speedup(&g, &params).unwrap();
        assert!(
            report.speedup() > 1.3,
            "expected clear speedup, got {:.3}",
            report.speedup()
        );
    }

    #[test]
    fn hidet_profile_applies_fewer_rules() {
        let g = residual_block();
        let params = TensorMap::init_random(&g, 6);
        let (ort_g, _, _) = Optimizer::new(Profile::OrtLike).optimize(&g, &params);
        let (hidet_g, _, _) = Optimizer::new(Profile::HidetLike).optimize(&g, &params);
        assert!(ort_g.len() <= hidet_g.len());
    }

    #[test]
    fn optimizer_is_idempotent() {
        let g = residual_block();
        let params = TensorMap::init_random(&g, 7);
        let opt = Optimizer::new(Profile::OrtLike);
        let (g1, p1, _) = opt.optimize(&g, &params);
        let (g2, _, stats2) = opt.optimize(&g1, &p1);
        assert_eq!(g1.len(), g2.len());
        let total: usize = stats2
            .rewrites
            .iter()
            .filter(|(name, _)| name != "winograd_rewrite")
            .map(|(_, n)| n)
            .sum();
        assert_eq!(total, 0, "second run should be a no-op: {stats2:?}");
    }

    #[test]
    fn zoo_models_optimize_and_validate() {
        use proteus_models::{build, ModelKind};
        for kind in [ModelKind::ResNet, ModelKind::MobileNet, ModelKind::Bert] {
            let g = build(kind);
            let opt = Optimizer::new(Profile::OrtLike);
            let (og, _, stats) = opt.optimize(&g, &TensorMap::new());
            og.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            proteus_graph::infer_shapes(&og).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(
                stats.nodes_after < stats.nodes_before,
                "{kind}: no reduction ({} -> {})",
                stats.nodes_before,
                stats.nodes_after
            );
        }
    }

    #[test]
    fn zoo_models_speed_up() {
        use proteus_models::{build, ModelKind};
        let opt = Optimizer::new(Profile::OrtLike);
        for kind in [
            ModelKind::ResNet,
            ModelKind::GoogleNet,
            ModelKind::DistilBert,
        ] {
            let g = build(kind);
            let report = opt.speedup(&g, &TensorMap::new()).unwrap();
            assert!(
                report.speedup() > 1.05,
                "{kind}: speedup only {:.3}",
                report.speedup()
            );
        }
    }

    #[test]
    fn nats_models_slow_down_under_ort() {
        // the paper's §6.1 phenomenon: graph optimization *hurts* the exotic
        // small-channel NAS model
        use proteus_models::nats;
        let opt = Optimizer::new(Profile::OrtLike);
        let g = nats::sample_conv_rich_model(3, 5);
        let report = opt.speedup(&g, &TensorMap::new()).unwrap();
        // not asserting an exact 2.15x — the shape is: optimized is slower
        assert!(
            report.speedup() < 1.0,
            "NATS model should slow down, got speedup {:.3}",
            report.speedup()
        );
    }
}
