//! Criterion micro-benchmarks of the Proteus pipeline stages.
//!
//! These complement the `fig*` binaries (which regenerate the paper's
//! figures): here we time the mechanism itself — partitioning, sentinel
//! generation, operator population, graph optimization, and the adversary's
//! inference — so regressions in any substrate are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use proteus::{detect_regime, populate, BigramModel, PopulationConfig};
use proteus_adversary::{SageClassifier, SageConfig};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::{induce_orientation, UGraph};
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use proteus_partition::{partition_balanced, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_partition(c: &mut Criterion) {
    let g = build(ModelKind::ResNet);
    c.bench_function("partition_resnet_n10_restarts16", |b| {
        b.iter(|| partition_balanced(&g, 10, 16, 42))
    });
}

fn bench_extract_reassemble(c: &mut Criterion) {
    let g = build(ModelKind::GoogleNet);
    let a = partition_balanced(&g, 12, 8, 7);
    c.bench_function("extract_plus_reassemble_googlenet", |b| {
        b.iter(|| {
            let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
            plan.reassemble_identity().unwrap()
        })
    });
}

fn bench_optimize(c: &mut Criterion) {
    let g = build(ModelKind::ResNet);
    let opt = Optimizer::new(Profile::OrtLike);
    c.bench_function("optimize_resnet_ort", |b| {
        b.iter(|| opt.optimize(&g, &TensorMap::new()))
    });
    let bert = build(ModelKind::DistilBert);
    c.bench_function("optimize_distilbert_ort", |b| {
        b.iter(|| opt.optimize(&bert, &TensorMap::new()))
    });
}

fn bench_populate(c: &mut Criterion) {
    let corpus: Vec<Graph> = vec![build(ModelKind::ResNet), build(ModelKind::MobileNet)];
    let refs: Vec<&Graph> = corpus.iter().collect();
    let bigram = BigramModel::fit(&refs, 0.1);
    let piece = {
        let g = build(ModelKind::ResNet);
        let a = partition_balanced(&g, 10, 8, 3);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        plan.pieces[0].graph.clone()
    };
    let topo = UGraph::from_graph(&piece);
    let dag = induce_orientation(&topo);
    let regime = detect_regime(&piece);
    let cfg = PopulationConfig::default();
    c.bench_function("operator_population_one_sentinel", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(5),
            |mut rng| populate(&dag, regime, &bigram, &cfg, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_adversary(c: &mut Criterion) {
    let clf = SageClassifier::new(SageConfig::default(), 3);
    let piece = {
        let g = build(ModelKind::ResNet);
        let a = partition_balanced(&g, 10, 8, 3);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).unwrap();
        plan.pieces[0].graph.clone()
    };
    c.bench_function("gnn_confidence_one_subgraph", |b| {
        b.iter(|| clf.confidence(&piece))
    });
}

fn bench_wire(c: &mut Criterion) {
    let g = build(ModelKind::Bert);
    c.bench_function("wire_encode_decode_bert", |b| {
        b.iter(|| {
            let bytes = proteus_graph::wire::encode_graph(&g);
            let mut buf = bytes;
            proteus_graph::wire::decode_graph(&mut buf).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_extract_reassemble, bench_optimize,
              bench_populate, bench_adversary, bench_wire
}
criterion_main!(benches);
