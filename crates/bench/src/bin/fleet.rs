//! Fleet load generator: replica-scaling and tail-latency-under-chaos
//! measurements for the fault-tolerant [`Fleet`], written to
//! `BENCH_fleet.json`.
//!
//! **What the numbers mean.** This runner models the serving bottleneck
//! the fleet parallelizes — a blocking per-task backend call (the
//! external optimizer service a deployment would front) — with a uniform
//! [`FaultPlan::stall_ms`] sleep per pool task (`stall_one_in: 1`). The
//! stall is wall-clock, not CPU, so N single-worker replicas genuinely
//! overlap N modeled backend calls even on a single-core runner; the
//! scaling series (1 → 2 → 4 replicas over the same stratified request
//! set) measures how throughput grows with replica count under that
//! model, and the full run asserts ≥ 2.5x at 4 replicas vs 1. Request
//! ids are stratified across the hash ring (equal primary load per
//! replica) so the series isolates replica scaling from consistent-hash
//! placement skew.
//!
//! The chaos series re-runs the 4-replica wave with two replicas armed
//! with a seeded 1-in-4 task-panic rate: every request must still
//! succeed (bounded retries re-dispatch to the healthy replicas) and the
//! p50/p99 under chaos quantify the re-dispatch latency tax.
//!
//! Every wave also asserts parity on a sample: fleet responses must be
//! bit-identical to the serial single-session path, chaos included.
//!
//! Usage: `cargo run --release -p proteus-bench --bin fleet [-- --smoke] [-- --out PATH]`

use proteus::fleet::{Fleet, FleetConfig};
use proteus::serve::SentinelPool;
use proteus::{
    DeobfuscationSession, FaultPlan, PartitionSpec, Proteus, ProteusConfig, SealedBucket,
    ServeConfig,
};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::Arc;
use std::time::Instant;

/// CPU-light rotation: the wave's cost should be dominated by the
/// modeled backend stall, not by optimizer CPU on a shared runner.
const ZOO: [ModelKind; 3] = [ModelKind::AlexNet, ModelKind::ResNet, ModelKind::MobileNet];

fn request_model(rid: u64) -> Graph {
    build(ZOO[rid as usize % ZOO.len()])
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Injected faults panic on purpose; keep the chaos wave's output
/// readable. Real panics still print through the previous hook.
fn quiet_fault_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("fault injection") {
            prev(info);
        }
    }));
}

/// The serial single-session reference every sampled fleet response is
/// checked against.
fn serial_reference(proteus: &Proteus, rid: u64, graph: &Graph) -> (Graph, TensorMap) {
    let optimizer = Optimizer::new(Profile::OrtLike);
    let mut session = proteus
        .obfuscate_session(graph, &TensorMap::new(), rid)
        .expect("session");
    let frames: Vec<SealedBucket> = session
        .by_ref()
        .map(|f| f.optimize(&optimizer, Some(1)))
        .collect();
    let secrets = session.finish().expect("secrets");
    let mut reassembly = DeobfuscationSession::new(&secrets);
    for f in frames {
        reassembly.accept(f).expect("accept");
    }
    reassembly.finish().expect("finish")
}

/// `total` request ids whose primary routes spread evenly over the
/// fleet's replicas (requires `total % replicas == 0`).
fn stratified_rids(fleet: &Fleet, total: usize, base: u64) -> Vec<u64> {
    let per = total / fleet.replicas();
    let mut counts = vec![0usize; fleet.replicas()];
    let mut rids = Vec::with_capacity(total);
    let mut rid = base;
    while rids.len() < total {
        let primary = fleet.route(rid).expect("fleet is up");
        if counts[primary] < per {
            counts[primary] += 1;
            rids.push(rid);
        }
        rid += 1;
    }
    rids
}

struct WaveResult {
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    redispatches: usize,
    max_attempts: u32,
}

/// Fires every request concurrently (closed burst) and waits for all of
/// them; parity-checks the first three against the serial path.
fn run_wave(fleet: &Fleet, proteus: &Proteus, rids: &[u64], label: &str) -> WaveResult {
    println!(
        "== wave: {label} ({} requests, {} replicas) ==",
        rids.len(),
        fleet.replicas()
    );
    let before_redispatch = fleet.stats().redispatches;
    let t0 = Instant::now();
    let outcomes: Vec<(f64, u32)> = std::thread::scope(|scope| {
        let joins: Vec<_> = rids
            .iter()
            .map(|&rid| {
                scope.spawn(move || {
                    let graph = request_model(rid);
                    let started = Instant::now();
                    let got = fleet
                        .serve_request_traced(proteus, &graph, &TensorMap::new(), rid)
                        .unwrap_or_else(|e| panic!("rid {rid}: {e}"));
                    let latency = started.elapsed().as_secs_f64() * 1e3;
                    (rid, got, latency)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| {
                let (rid, got, latency) = j.join().expect("wave client");
                if rid == rids[0] || rid == rids[1] || rid == rids[2] {
                    let graph = request_model(rid);
                    let (want_g, want_p) = serial_reference(proteus, rid, &graph);
                    assert_eq!(got.graph, want_g, "rid {rid}: fleet diverged from serial");
                    assert_eq!(got.params, want_p, "rid {rid}");
                }
                (latency, got.attempts)
            })
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = outcomes.iter().map(|&(l, _)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let redispatches = fleet.stats().redispatches - before_redispatch;
    let result = WaveResult {
        throughput_rps: rids.len() as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        redispatches,
        max_attempts: outcomes.iter().map(|&(_, a)| a).max().unwrap_or(1),
    };
    println!(
        "   {:.2} req/s, p50 {:.0}ms, p99 {:.0}ms, {} re-dispatches",
        result.throughput_rps, result.p50_ms, result.p99_ms, result.redispatches
    );
    result
}

fn fleet_config(replicas: usize, stall_ms: u32) -> FleetConfig {
    FleetConfig {
        replicas,
        serve: ServeConfig {
            workers: 1,
            window: 4,
            cache_capacity: 0, // the modeled backend is stalled per task; a
            // cache would skip exactly the work being measured
            faults: FaultPlan {
                stall_one_in: 1,
                stall_ms,
                ..Default::default()
            },
            ..Default::default()
        },
        deadline_ms: 0,
        max_retries: 4,
        backoff_ms: 2,
        auto_respawn: true,
        virtual_nodes: 16,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let requests: usize = if smoke { 8 } else { 24 };
    let stall_ms: u32 = if smoke { 5 } else { 25 };
    quiet_fault_panics();

    println!("== training shared Proteus instance ==");
    let proteus = Proteus::builder()
        .config(ProteusConfig {
            k: 2,
            partitions: PartitionSpec::Count(2),
            graphrnn: GraphRnnConfig {
                epochs: 2,
                max_nodes: 20,
                ..Default::default()
            },
            topology_pool: 30,
            ..Default::default()
        })
        .corpus_model(build(ModelKind::ResNeXt))
        .train_shared()
        .expect("train");

    // sentinel generation is per-request CPU; warm it out of the waves so
    // the scaling series measures the replicas, not the shared inventory
    println!("== warming sentinel inventory ==");
    let warmer = SentinelPool::spawn(Arc::clone(&proteus));
    let warmed = warmer.join();
    println!("   {warmed} sentinels warmed");

    // -- scaling series: same stratified load, growing replica count --
    let mut scaling: Vec<(usize, WaveResult)> = Vec::new();
    for replicas in [1usize, 2, 4] {
        let fleet = Fleet::new(
            Optimizer::new(Profile::OrtLike),
            fleet_config(replicas, stall_ms),
        )
        .expect("fleet starts");
        let rids = stratified_rids(&fleet, requests, 10_000 * replicas as u64);
        let wave = run_wave(&fleet, &proteus, &rids, &format!("scaling x{replicas}"));
        assert_eq!(wave.redispatches, 0, "clean wave must not re-dispatch");
        scaling.push((replicas, wave));
    }
    let speedup = scaling[2].1.throughput_rps / scaling[0].1.throughput_rps;
    println!("== 4-replica speedup over 1 replica: {speedup:.2}x ==");
    if !smoke {
        assert!(
            speedup >= 2.5,
            "4 replicas gave only {speedup:.2}x over 1 (needed >= 2.5x)"
        );
    }

    // -- chaos series: 4 replicas, two of them crash-prone --
    let crashy = FaultPlan {
        seed: 0xC4A05,
        stall_one_in: 1,
        stall_ms,
        panic_one_in: 4,
        ..Default::default()
    };
    let chaos_fleet = Fleet::with_replica_faults(
        Optimizer::new(Profile::OrtLike),
        fleet_config(4, stall_ms),
        &[crashy, crashy],
    )
    .expect("chaos fleet starts");
    let rids = stratified_rids(&chaos_fleet, requests, 77_000);
    let chaos = run_wave(
        &chaos_fleet,
        &proteus,
        &rids,
        "chaos x4 (2 crash-prone replicas)",
    );
    assert!(
        chaos.redispatches > 0,
        "a 1-in-4 crash rate on half the fleet must force some re-dispatch"
    );

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(replicas, w)| {
            format!(
                "    {{\"replicas\": {replicas}, \"requests\": {requests}, \
                 \"throughput_rps\": {:.2}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}, \
                 \"p99_ms\": {:.1}}}",
                w.throughput_rps, w.p50_ms, w.p95_ms, w.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"BENCH_fleet\",\n  \"mode\": \"{}\",\n  \
         \"modeled_backend\": {{\"stall_ms_per_task\": {stall_ms}, \"note\": \
         \"per-task wall-clock stall modeling a blocking backend optimizer call; \
         replica scaling overlaps these stalls, so the series is meaningful on a \
         single-core runner\"}},\n  \
         \"request_ids\": \"stratified across the hash ring (equal primary load per replica)\",\n  \
         \"workers_per_replica\": 1,\n  \"warm_sentinels\": {warmed},\n  \
         \"scaling\": [\n{}\n  ],\n  \
         \"speedup_4_replicas_vs_1\": {:.2},\n  \
         \"chaos\": {{\"replicas\": 4, \"crash_prone_replicas\": 2, \"panic_one_in\": 4, \
         \"fault_seed\": \"0xC4A05\", \"requests\": {requests}, \"succeeded\": {requests}, \
         \"redispatches\": {}, \"max_attempts\": {}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}, \
         \"p99_ms\": {:.1}}},\n  \
         \"parity\": \"sampled fleet responses bit-identical to the serial session path, \
         chaos wave included (asserted); every re-dispatch byte-parity hard-assert armed\"\n}}\n",
        if smoke { "smoke" } else { "full" },
        scaling_json.join(",\n"),
        speedup,
        chaos.redispatches,
        chaos.max_attempts,
        chaos.p50_ms,
        chaos.p95_ms,
        chaos.p99_ms,
    );
    std::fs::write(&out_path, json).expect("write BENCH_fleet.json");
    println!("\nwrote {out_path}");
    println!("parity assertions passed");
}
