//! Case study §6.2: optimizing a ResNet-like model (SEResNet).
//!
//! The protected model closely resembles a popular architecture (ResNet
//! with squeeze-excitation blocks), so Proteus uses the *perturbation*
//! sentinel mode. To reproduce:
//! 1. the optimizer attains a solid speedup directly (paper: 1.663x);
//! 2. Proteus keeps most of it (paper: 1.494x, a ~10% penalty);
//! 3. the GNN adversary's search space stays enormous (paper: 1.22e87
//!    with n = 83, k = 20 — our SEResNet is smaller, so n is smaller and
//!    the exponent scales down accordingly).
//!
//! Usage: `cargo run --release -p proteus-bench --bin case_seresnet [-- --quick]`

use proteus::{PartitionSpec, Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::{attack_buckets, LabelledBucket};
use proteus_bench::{train_adversary, AttackScale};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        AttackScale::quick()
    } else {
        AttackScale::full()
    };
    let k = if quick { 6 } else { 20 };

    let model = build(ModelKind::SEResNet);
    println!("\n== Case study: SEResNet ({} nodes) ==\n", model.len());

    let optimizer = Optimizer::new(Profile::OrtLike);
    let unopt = optimizer.estimate_us(&model).expect("infers");
    let (best_graph, _, _) = optimizer.optimize(&model, &TensorMap::new());
    let best = optimizer.estimate_us(&best_graph).expect("infers");
    println!(
        "direct optimization:  speedup {:.3}x  (paper: 1.663x)",
        unopt / best
    );

    let assignment = partition_by_size(&model, 8, 16, 5);
    let plan = PartitionPlan::extract(&model, &TensorMap::new(), &assignment).expect("extract");
    let n = plan.pieces.len();
    let optimized: Vec<_> = plan
        .pieces
        .iter()
        .map(|p| {
            let (g, params, _) = optimizer.optimize(&p.graph, &p.params);
            (g, params)
        })
        .collect();
    let (merged, _) = plan.reassemble(&optimized).expect("reassemble");
    let proteus_us = optimizer.estimate_us(&merged).expect("infers");
    println!(
        "with Proteus (n={n}): speedup {:.3}x  (paper: 1.494x, ~10% penalty; penalty here {:.1}%)",
        unopt / proteus_us,
        (proteus_us - best) / best * 100.0
    );

    // perturbation-mode sentinels: the protected model resembles ResNet
    let corpus: Vec<_> = ModelKind::ALL
        .iter()
        .filter(|&&m| m != ModelKind::SEResNet)
        .map(|&m| build(m))
        .collect();
    let config = ProteusConfig {
        k,
        partitions: PartitionSpec::TargetSize(8),
        mode: SentinelMode::Perturb,
        graphrnn: GraphRnnConfig {
            epochs: scale.rnn_epochs,
            ..Default::default()
        },
        topology_pool: scale.pool,
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(21);
    let buckets: Vec<LabelledBucket> = plan
        .pieces
        .iter()
        .map(|p| LabelledBucket {
            real: p.graph.clone(),
            sentinels: proteus
                .factory()
                .generate(&p.graph, k, SentinelMode::Perturb, &mut rng),
        })
        .collect();

    // adversary trained on other models' pieces + their perturbation
    // sentinels (it knows the mechanism, per the threat model)
    let mut examples = Vec::new();
    for (i, g) in corpus.iter().take(4).enumerate() {
        let a = partition_by_size(g, 8, 4, i as u64);
        if let Ok(p2) = PartitionPlan::extract(g, &TensorMap::new(), &a) {
            for cp in p2.pieces.iter().take(8) {
                examples.push(proteus_adversary::Example::new(&cp.graph, false));
                for s in proteus.factory().generate(
                    &cp.graph,
                    scale.k_train,
                    SentinelMode::Perturb,
                    &mut rng,
                ) {
                    examples.push(proteus_adversary::Example::new(&s, true));
                }
            }
        }
    }
    let clf = train_adversary(&examples, scale.gnn_epochs, 31);
    let report = attack_buckets(&clf, &buckets);
    println!(
        "\nGNN adversary: specificity = {:.3}, gamma = {:.3}, search space = {} (10^{:.1})",
        report.specificity,
        report.min_gamma,
        report.candidates_string(),
        report.log10_candidates
    );
    println!(
        "(paper: sensitivity 44% at gamma 0.79 -> 1.22e87 candidates with n = 83, k = 20;\n our n = {n}, so compare log10-per-bucket: paper {:.2}, ours {:.2})",
        87.09 / 83.0,
        report.log10_candidates / n as f64
    );
}
