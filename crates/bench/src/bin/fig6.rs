//! Figure 6: search-space reduction achieved by the learning-based (GNN)
//! adversary, for Random-Opcode sentinels vs full Proteus sentinels.
//!
//! For each protected model: a GraphSAGE classifier is trained leave-one-out
//! (on every other model's real subgraphs + sentinels), the decision
//! threshold γ is set pessimistically in the adversary's favour (smallest γ
//! that eliminates no real subgraph, α = 1), and the surviving search space
//! is `Π_i (1 + survivors_i)` ≈ `[1 + (1-β)k]^n`.
//!
//! The claim to reproduce: Random-Opcode buckets collapse (often to a
//! handful of candidates) while Proteus buckets retain astronomically many.
//!
//! Usage: `cargo run --release -p proteus-bench --bin fig6 [-- --quick] [-- --no-semantic]`

use proteus_adversary::attack_buckets;
use proteus_bench::{
    buckets_of, build_material, print_header, print_row, train_adversary, training_examples,
    AttackScale,
};
use proteus_models::ModelKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        AttackScale::quick()
    } else {
        AttackScale::full()
    };

    // (model, n) rows follow the paper's Figure 6
    let rows: Vec<(ModelKind, usize)> = if quick {
        vec![
            (ModelKind::ResNet, 10),
            (ModelKind::MobileNet, 11),
            (ModelKind::Bert, 16),
        ]
    } else {
        vec![
            (ModelKind::DenseNet, 19),
            (ModelKind::GoogleNet, 11),
            (ModelKind::Inception, 19),
            (ModelKind::MnasNet, 11),
            (ModelKind::ResNet, 10),
            (ModelKind::MobileNet, 11),
            (ModelKind::Bert, 16),
            (ModelKind::Roberta, 16),
            (ModelKind::Xlm, 25),
        ]
    };

    eprintln!(
        "building sentinel material for {} models (k = {})...",
        rows.len(),
        scale.k
    );
    let materials: Vec<_> = rows
        .iter()
        .enumerate()
        .map(|(i, &(kind, n))| {
            eprintln!("  [{}/{}] {kind}", i + 1, rows.len());
            build_material(kind, n, scale, 1000 + i as u64)
        })
        .collect();

    println!(
        "\n== Figure 6: search-space reduction (k = {}) ==\n",
        scale.k
    );
    let widths = [12usize, 4, 4, 11, 9, 12, 11, 9, 12];
    print_header(
        &[
            "model", "n", "k", "RO spec", "RO gamma", "RO cand", "PR spec", "PR gamma", "PR cand",
        ],
        &widths,
    );

    for (i, material) in materials.iter().enumerate() {
        let kind = material.kind;
        let mut cells = vec![
            kind.to_string(),
            material.n.to_string(),
            scale.k.to_string(),
        ];
        for use_baseline in [true, false] {
            let examples = training_examples(&materials, kind, use_baseline, scale.k_train);
            let clf = train_adversary(&examples, scale.gnn_epochs, 7 + i as u64);
            let report = attack_buckets(&clf, &buckets_of(material, use_baseline));
            cells.push(format!("{:.3}", report.specificity));
            cells.push(format!("{:.3}", report.min_gamma));
            cells.push(report.candidates_string());
        }
        print_row(&cells, &widths);
    }
    println!("\nRO = Random-Opcode baseline, PR = Proteus. `cand` = surviving search space.");
    println!("(paper: RO often collapses to ~1-10^3 candidates; Proteus retains 10^7..10^25)");
}
