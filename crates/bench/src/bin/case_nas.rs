//! Case study §6.1: optimizing a NAS (NATS-Bench-style) model.
//!
//! The paper's observations to reproduce:
//! 1. the ONNXRuntime-style optimizer *slows the exotic model down*
//!    (paper: 2.15x) because optimizations tuned for common models misfire;
//! 2. Proteus faithfully mirrors that outcome (paper: 2.164x slowdown) —
//!    confidentiality does not mask the optimizer's behaviour, good or bad;
//! 3. the GNN adversary still faces an astronomically large search space
//!    (paper: 1.18e21 with n = 24, k = 50).
//!
//! Usage: `cargo run --release -p proteus-bench --bin case_nas [-- --quick]`

use proteus::{random_opcode_sentinels, PartitionSpec, Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::{attack_buckets, LabelledBucket};
use proteus_bench::{train_adversary, AttackScale};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, nats, ModelKind};
use proteus_opt::{Optimizer, Profile};
use proteus_partition::{partition_balanced, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        AttackScale::quick()
    } else {
        AttackScale::full()
    };
    let k = if quick { 8 } else { 50 }; // paper's case study uses k = 50
    let n = 24; // paper: n = 24 (avg subgraph size 8)

    let model = nats::sample_conv_rich_model(3, 5);
    println!("\n== Case study: NAS model ({} nodes) ==\n", model.len());

    let optimizer = Optimizer::new(Profile::OrtLike);
    let unopt = optimizer.estimate_us(&model).expect("infers");
    let (best_graph, _, _) = optimizer.optimize(&model, &TensorMap::new());
    let best = optimizer.estimate_us(&best_graph).expect("infers");
    println!(
        "direct optimization:  {unopt:.0} us -> {best:.0} us  (slowdown {:.3}x; paper: 2.15x)",
        best / unopt
    );

    // Proteus path: partition, optimize pieces, reassemble
    let assignment = partition_balanced(&model, n, 16, 9);
    let plan = PartitionPlan::extract(&model, &TensorMap::new(), &assignment).expect("extract");
    let optimized: Vec<_> = plan
        .pieces
        .iter()
        .map(|p| {
            let (g, params, _) = optimizer.optimize(&p.graph, &p.params);
            (g, params)
        })
        .collect();
    let (merged, _) = plan.reassemble(&optimized).expect("reassemble");
    let proteus_us = optimizer.estimate_us(&merged).expect("infers");
    println!(
        "with Proteus (n={n}): {unopt:.0} us -> {proteus_us:.0} us  (slowdown {:.3}x; paper: 2.164x)",
        proteus_us / unopt
    );

    // GNN adversary on the obfuscated buckets
    let corpus: Vec<_> = ModelKind::ALL.iter().map(|&m| build(m)).collect();
    let config = ProteusConfig {
        k,
        partitions: PartitionSpec::Count(n),
        graphrnn: GraphRnnConfig {
            epochs: scale.rnn_epochs,
            ..Default::default()
        },
        topology_pool: scale.pool,
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(77);
    let mut buckets = Vec::new();
    let mut train_examples = Vec::new();
    for (i, piece) in plan.pieces.iter().enumerate() {
        let sentinels =
            proteus
                .factory()
                .generate(&piece.graph, k, SentinelMode::Generative, &mut rng);
        buckets.push(LabelledBucket {
            real: piece.graph.clone(),
            sentinels,
        });
        // training data for the adversary: zoo subgraphs + their sentinels
        if i < 4 {
            let corpus_piece = &corpus[i % corpus.len()];
            let a = partition_balanced(corpus_piece, 10, 4, i as u64);
            if let Ok(p2) = PartitionPlan::extract(corpus_piece, &TensorMap::new(), &a) {
                for cp in p2.pieces.iter().take(6) {
                    train_examples.push(proteus_adversary::Example::new(&cp.graph, false));
                    for s in proteus.factory().generate(
                        &cp.graph,
                        scale.k_train,
                        SentinelMode::Generative,
                        &mut rng,
                    ) {
                        train_examples.push(proteus_adversary::Example::new(&s, true));
                    }
                }
            }
        }
    }
    let clf = train_adversary(&train_examples, scale.gnn_epochs, 13);
    let report = attack_buckets(&clf, &buckets);
    println!(
        "\nGNN adversary: gamma = {:.3}, sensitivity held at 1.0, search space = {} (10^{:.1})",
        report.min_gamma,
        report.candidates_string(),
        report.log10_candidates
    );
    println!("(paper: 1.18e21 candidates with n = 24, k = 50)");

    // Also sanity-report the random-opcode collapse on this model.
    let mut rng2 = StdRng::seed_from_u64(78);
    let ro_buckets: Vec<LabelledBucket> = plan
        .pieces
        .iter()
        .map(|p| LabelledBucket {
            real: p.graph.clone(),
            sentinels: random_opcode_sentinels(
                &p.graph,
                k,
                proteus.factory().sampler(),
                proteus.config().beta,
                &mut rng2,
            ),
        })
        .collect();
    let ro_report = attack_buckets(&clf, &ro_buckets);
    println!(
        "random-opcode baseline search space = {} (10^{:.1})",
        ro_report.candidates_string(),
        ro_report.log10_candidates
    );
}
