//! Figures 8/9 and Appendix A.2: the tunable-parameter tradeoff table and
//! the measured compilation-overhead of optimizing a bucket versus the
//! original model.
//!
//! Usage: `cargo run --release -p proteus-bench --bin fig9 [-- --quick]`

use proteus::{optimize_model_serial, PartitionSpec, Proteus, ProteusConfig};
use proteus_adversary::analytic_log10_candidates;
use proteus_bench::{print_header, print_row};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("\n== Figure 8: tunable parameters ==\n");
    println!("  n  - number of graph partitions generated from the protected graph");
    println!("  k  - number of sentinel subgraphs generated per protected subgraph");

    println!("\n== Figure 9: analytic tradeoffs ==\n");
    let widths = [38usize, 22];
    print_header(&["item", "cost"], &widths);
    print_row(
        &["recovery cost of adversary".into(), "O((k+1)^n)".into()],
        &widths,
    );
    print_row(
        &["computational overhead of optimizer".into(), "O(k)".into()],
        &widths,
    );
    print_row(
        &["quality of model optimizations".into(), "see fig10".into()],
        &widths,
    );

    println!("\nSearch-space size for representative (n, k) at specificity 0:\n");
    let widths2 = [6usize, 6, 22];
    print_header(&["n", "k", "log10 candidates"], &widths2);
    for (n, k) in [(10usize, 20usize), (16, 20), (25, 20), (24, 50), (83, 20)] {
        print_row(
            &[
                n.to_string(),
                k.to_string(),
                format!("{:.1}", analytic_log10_candidates(n, k, 0.0)),
            ],
            &widths2,
        );
    }

    // A.2: measured compilation overhead — optimizing the bucket costs
    // ~(k+1)x the original compile time.
    let k = if quick { 3 } else { 10 };
    println!("\n== Appendix A.2: compilation overhead (measured, k = {k}) ==\n");
    let corpus: Vec<_> = [ModelKind::MobileNet, ModelKind::GoogleNet]
        .iter()
        .map(|&m| build(m))
        .collect();
    let config = ProteusConfig {
        k,
        partitions: PartitionSpec::TargetSize(8),
        graphrnn: GraphRnnConfig {
            epochs: if quick { 2 } else { 6 },
            ..Default::default()
        },
        topology_pool: if quick { 30 } else { 100 },
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let optimizer = Optimizer::new(Profile::OrtLike);
    let widths3 = [12usize, 14, 14, 10];
    print_header(&["model", "direct (ms)", "bucket (ms)", "ratio"], &widths3);
    for kind in [ModelKind::ResNet, ModelKind::DistilBert] {
        let g = build(kind);
        let t0 = Instant::now();
        let _ = optimizer.optimize(&g, &TensorMap::new());
        let direct = t0.elapsed().as_secs_f64() * 1e3;

        let (bucket, _) = proteus.obfuscate(&g, &TensorMap::new()).expect("obfuscate");
        let t1 = Instant::now();
        let _ = optimize_model_serial(&bucket, &optimizer);
        let bucketed = t1.elapsed().as_secs_f64() * 1e3;
        print_row(
            &[
                kind.to_string(),
                format!("{direct:.1}"),
                format!("{bucketed:.1}"),
                format!("{:.1}x", bucketed / direct),
            ],
            &widths3,
        );
    }
    println!("\n(paper: a k-fold compile-time increase, e.g. 6 s -> ~5 min at k = 50;");
    println!(" the ratio ~= k+1 since every bucket member is compiled once)");
}
