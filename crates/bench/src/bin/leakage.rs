//! Per-family structural-leakage harness: trains the learning-based
//! adversaries leave-one-out over one representative model per
//! architecture family and reports, for each family, the structural
//! leakage of its Proteus buckets — degree/opcode divergence between
//! reals and sentinels, classifier advantage, and α=1 specificity for
//! both the paper's GraphSAGE attacker and the escalated structural
//! attacker. Writes `BENCH_leakage.json`.
//!
//! Usage: `cargo run --release -p proteus-bench --bin leakage [-- --smoke] [-- --out PATH]`

use proteus_adversary::{measure_leakage, BucketClassifier, LeakageReport};
use proteus_bench::{
    buckets_of, build_material, print_header, print_row, structural_examples, train_adversary,
    train_structural_adversary, training_examples, AttackScale, ModelMaterial,
};
use proteus_models::ModelKind;

/// One representative model per architecture family — the leave-one-out
/// corpus stays cross-family, so a holdout's metrics measure how much the
/// *family's* structure leaks, not how well the attacker memorized it.
const REPRESENTATIVES: [ModelKind; 5] = [
    ModelKind::AlexNet,    // convnet
    ModelKind::Bert,       // encoder
    ModelKind::GptDecoder, // decoder
    ModelKind::GraphSage,  // gnn
    ModelKind::UNet,       // unet
];

const SEED: u64 = 0x5EED;

fn report_json(family: &str, attacker: &str, r: &LeakageReport) -> String {
    format!(
        "{{\"family\": \"{family}\", \"attacker\": \"{attacker}\", \"n_buckets\": {}, \
         \"degree_divergence\": {:.4}, \"opcode_divergence\": {:.4}, \
         \"classifier_advantage\": {:.4}, \"specificity_alpha1\": {:.4}}}",
        r.n_buckets,
        r.degree_divergence,
        r.opcode_divergence,
        r.classifier_advantage,
        r.specificity_alpha1,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_leakage.json".to_string());
    let (scale, n) = if smoke {
        (
            AttackScale {
                k: 3,
                k_train: 2,
                rnn_epochs: 2,
                pool: 30,
                gnn_epochs: 3,
            },
            4,
        )
    } else {
        (AttackScale::quick(), 6)
    };

    println!(
        "== per-family structural leakage (n={n}, k={}, {} mode) ==\n",
        scale.k,
        if smoke { "smoke" } else { "quick" }
    );
    let materials: Vec<ModelMaterial> = REPRESENTATIVES
        .iter()
        .map(|&kind| build_material(kind, n, scale, SEED))
        .collect();

    let widths = [10usize, 12, 10, 10, 10, 12];
    print_header(
        &[
            "family",
            "attacker",
            "deg-div",
            "op-div",
            "advantage",
            "specificity",
        ],
        &widths,
    );
    let mut rows = Vec::new();
    for m in &materials {
        let family = m.kind.family().tag();
        let buckets = buckets_of(m, false);
        let sage = train_adversary(
            &training_examples(&materials, m.kind, false, scale.k_train),
            scale.gnn_epochs,
            SEED,
        );
        let structural = train_structural_adversary(
            &structural_examples(&materials, m.kind, false, scale.k_train),
            scale.gnn_epochs,
            SEED,
        );
        let attackers: [(&str, &dyn BucketClassifier); 2] =
            [("sage", &sage), ("structural", &structural)];
        for (name, clf) in attackers {
            let r = measure_leakage(clf, &buckets);
            assert!(
                (0.0..=1.0).contains(&r.degree_divergence)
                    && (0.0..=1.0).contains(&r.opcode_divergence)
                    && (0.0..=1.0).contains(&r.classifier_advantage)
                    && (0.0..=1.0).contains(&r.specificity_alpha1),
                "{family}/{name}: leakage metrics out of range: {r:?}"
            );
            print_row(
                &[
                    family.to_string(),
                    name.to_string(),
                    format!("{:.3}", r.degree_divergence),
                    format!("{:.3}", r.opcode_divergence),
                    format!("{:.3}", r.classifier_advantage),
                    format!("{:.3}", r.specificity_alpha1),
                ],
                &widths,
            );
            rows.push(report_json(family, name, &r));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_leakage\",\n  \"mode\": \"{}\",\n  \"seed\": {SEED},\n  \
         \"n_partitions\": {n},\n  \"k\": {},\n  \"reports\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "quick" },
        scale.k,
        rows.join(",\n    "),
    );
    std::fs::write(&out_path, json).expect("write BENCH_leakage.json");
    println!("\nwrote {out_path}");
}
