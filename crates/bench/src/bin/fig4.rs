//! Figure 4 (a/b): execution time of DL models — Unoptimized vs Best
//! Attainable vs Proteus, under the ONNXRuntime-like and Hidet-like
//! optimizers. The headline claim: Proteus stays within ~10% of Best
//! Attainable on average (geomean slowdown 1.08x for ORT, 1.02x for Hidet).
//!
//! Usage: `cargo run --release -p proteus-bench --bin fig4 [-- --profile ort|hidet]`

use proteus_bench::{latency_triple, print_header, print_row};
use proteus_models::{build, ModelKind};
use proteus_opt::Profile;

fn run(profile: Profile, models: &[ModelKind]) {
    println!(
        "\n== Figure 4{}: {} ==\n",
        if profile == Profile::OrtLike {
            "a"
        } else {
            "b"
        },
        profile.name()
    );
    let widths = [12usize, 14, 16, 12, 10];
    print_header(
        &[
            "model",
            "unoptimized",
            "best attainable",
            "proteus",
            "slowdown",
        ],
        &widths,
    );
    let mut log_sum = 0.0f64;
    for &kind in models {
        let g = build(kind);
        let (unopt, best, proteus) = latency_triple(&g, profile, 8, 42);
        let slowdown = proteus / best;
        log_sum += slowdown.ln();
        print_row(
            &[
                kind.to_string(),
                format!("{unopt:.0} us"),
                format!("{best:.0} us"),
                format!("{proteus:.0} us"),
                format!("{slowdown:.2}x"),
            ],
            &widths,
        );
    }
    let geomean = (log_sum / models.len() as f64).exp();
    println!("\nGeomean slowdown of Proteus over Best Attainable: {geomean:.3}x");
    println!("(paper: 1.08x for ONNXRuntime, 1.02x for Hidet)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("both");

    // model lists follow the paper's Figure 4a/4b x-axes
    let fig4a = [
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Bert,
        ModelKind::Roberta,
        ModelKind::DistilBert,
    ];
    let fig4b = [
        ModelKind::AlexNet,
        ModelKind::Inception,
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::ResNeXt,
        ModelKind::Bert,
        ModelKind::DistilBert,
    ];

    if which == "ort" || which == "both" {
        run(Profile::OrtLike, &fig4a);
    }
    if which == "hidet" || which == "both" {
        run(Profile::HidetLike, &fig4b);
    }
}
