//! Figure 10 (Appendix A.3): average subgraph size vs percent speedup lost.
//!
//! Sweeps the partition granularity across the evaluated models and reports
//! the loss relative to Best Attainable: small subgraphs cut many fusion
//! opportunities; at size 8-16 the loss drops under ~10% (the paper's sweet
//! spot); large subgraphs approach zero loss.
//!
//! `--raw-ks` ablates the balance restarts of the Karger-Stein loop,
//! showing why the paper's min-std-dev enhancement matters.
//!
//! Usage: `cargo run --release -p proteus-bench --bin fig10 [-- --raw-ks]`

use proteus_bench::{latency_triple_n, print_header, print_row};
use proteus_models::{build, ModelKind};
use proteus_opt::Profile;

fn main() {
    let balanced = !std::env::args().any(|a| a == "--raw-ks");
    let models = [
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Bert,
        ModelKind::DistilBert,
    ];
    let sizes = [2usize, 4, 8, 16, 32, 64, 128];

    println!(
        "\n== Figure 10: avg subgraph size vs % speedup lost ({}) ==\n",
        if balanced {
            "balanced partitioning"
        } else {
            "RAW Karger-Stein ablation"
        }
    );
    let mut widths = vec![12usize];
    widths.extend(std::iter::repeat_n(9, sizes.len()));
    let mut header = vec!["model".to_string()];
    header.extend(sizes.iter().map(|s| format!("size {s}")));
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    let mut per_size_loss = vec![Vec::new(); sizes.len()];
    for kind in models {
        let g = build(kind);
        let mut cells = vec![kind.to_string()];
        for (si, &size) in sizes.iter().enumerate() {
            let n = (g.len() / size).max(1);
            let (_, best, proteus) = latency_triple_n(&g, Profile::OrtLike, n, balanced, 42);
            // percent of the *speedup* lost relative to Best Attainable
            let loss = (proteus - best) / best * 100.0;
            per_size_loss[si].push(loss);
            cells.push(format!("{loss:+.1}%"));
        }
        print_row(&cells, &widths);
    }
    let mut cells = vec!["MEAN".to_string()];
    for losses in &per_size_loss {
        let mean = losses.iter().sum::<f64>() / losses.len() as f64;
        cells.push(format!("{mean:+.1}%"));
    }
    print_row(&cells, &widths);
    println!("\n(paper: loss shrinks as average subgraph size grows; 8-16 is the");
    println!(" sweet spot where loss stays under ~10% with modest sentinel overhead)");
}
