//! `proteus-train` — offline training and artifact management for the
//! warm-start serving workflow (see `proteus::artifact`).
//!
//! Subcommands:
//!
//! - `train --out PATH [options]` — train a sentinel generator on named
//!   zoo models and save it as a `PRTA` artifact. The corpus names are
//!   recorded as artifact provenance so `verify` can retrain and compare.
//! - `inspect PATH` — decode, validate every checksum, and print the
//!   artifact summary (version, fingerprint, sections, trained-state
//!   sizes).
//! - `verify PATH [--probe MODEL,...]` — the determinism gate: load the
//!   artifact, retrain a fresh instance from the recorded provenance under
//!   the embedded config, and hard-assert (a) the fresh instance
//!   re-serializes to the same state sections and (b) both instances
//!   produce bit-identical obfuscation wire bytes on the probe models.
//! - `store verify DIR` — fsck a durable store directory
//!   (`proteus-serve --store-dir`): replay the committed WAL horizon,
//!   verifying every frame checksum and the Merkle-style digest chain,
//!   and report what is resident. Exits nonzero on any corruption.
//!
//! Examples:
//!
//! ```text
//! proteus-train train --out zoo.prta --corpus resnet,mobilenet --quick
//! proteus-train inspect zoo.prta
//! proteus-train verify zoo.prta --probe alexnet,bert
//! proteus-train store verify /var/lib/proteus/store
//! ```

use proteus::store::Store;
use proteus::{PartitionSpec, Proteus, ProteusConfig, TrainedArtifact};
use proteus_graph::TensorMap;
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: proteus-train <subcommand>\n\
         \n\
         \x20 train --out PATH [--corpus a,b,..] [--k N] [--epochs N] [--pool N]\n\
         \x20       [--seed N] [--target-size N] [--quick]\n\
         \x20 inspect PATH\n\
         \x20 verify PATH [--probe a,b,..]\n\
         \x20 store verify DIR\n\
         \n\
         model names: {}",
        ModelKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_kind(name: &str) -> Result<ModelKind, String> {
    ModelKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown model `{name}`"))
}

fn parse_kinds(list: &str) -> Result<Vec<ModelKind>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_kind)
        .collect()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects an integer, got `{v}`")),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("train requires --out PATH")?;
    let quick = args.iter().any(|a| a == "--quick");
    let corpus_names = flag_value(args, "--corpus").unwrap_or_else(|| {
        if quick {
            "resnet".to_string()
        } else {
            "resnet,mobilenet,densenet,googlenet".to_string()
        }
    });
    let kinds = parse_kinds(&corpus_names)?;
    if kinds.is_empty() {
        return Err("--corpus names no models".to_string());
    }
    let config = ProteusConfig {
        k: parse_usize(args, "--k", if quick { 2 } else { 8 })?,
        partitions: PartitionSpec::TargetSize(parse_usize(args, "--target-size", 8)?),
        graphrnn: GraphRnnConfig {
            epochs: parse_usize(args, "--epochs", if quick { 1 } else { 8 })?,
            max_nodes: if quick { 16 } else { 40 },
            ..Default::default()
        },
        topology_pool: parse_usize(args, "--pool", if quick { 12 } else { 120 })?,
        seed: flag_value(args, "--seed")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--seed expects u64, got `{v}`"))
            })
            .transpose()?
            .unwrap_or(0xB0B),
        ..Default::default()
    };
    let provenance: String = kinds.iter().map(|k| k.name()).collect::<Vec<_>>().join(",");
    println!(
        "training on [{provenance}] (k={}, pool={}) ...",
        config.k, config.topology_pool
    );
    let t = Instant::now();
    let proteus = Proteus::builder()
        .config(config)
        .corpus(kinds.iter().map(|&k| build(k)))
        .train()
        .map_err(|e| e.to_string())?;
    let train_ms = t.elapsed().as_secs_f64() * 1e3;
    // warm the full sentinel inventory so the artifact ships pre-built
    // sentinels: serving processes skip both training *and* first-draw
    // generation (and `verify` reproduces the sweep deterministically)
    let t = Instant::now();
    let warmed = proteus.warm_inventory();
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let artifact = TrainedArtifact::from_proteus(&proteus, provenance);
    let bytes = artifact.to_bytes();
    std::fs::write(&out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "trained in {train_ms:.0} ms, warmed {warmed} sentinels in {warm_ms:.0} ms, \
         wrote {} bytes to {out} (config fingerprint {:#018x})",
        bytes.len(),
        proteus.config_fingerprint()
    );
    Ok(())
}

fn cmd_inspect(path: &str) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (artifact, summary) =
        TrainedArtifact::from_bytes_with_summary(&data).map_err(|e| e.to_string())?;
    println!("artifact            {path} ({} bytes)", data.len());
    println!("format version      {}", summary.version);
    println!("config fingerprint  {:#018x}", summary.config_fingerprint);
    println!(
        "provenance          {}",
        if summary.provenance.is_empty() {
            "(none)"
        } else {
            &summary.provenance
        }
    );
    println!("sentinel pool       {} topologies", summary.pool_len);
    println!(
        "graphrnn            {} parameters, {} scalars",
        summary.rnn_params, summary.rnn_scalars
    );
    println!("bigram vocabulary   {} opcodes", summary.bigram_vocab);
    println!(
        "sentinel inventory  {} persisted sentinels",
        summary.sentinel_entries
    );
    let cfg = artifact.config();
    println!(
        "config              k={}, partitions={:?}, beta={}, pool={}, seed={:#x}",
        cfg.k, cfg.partitions, cfg.beta, cfg.topology_pool, cfg.seed
    );
    println!("sections:");
    for (name, len) in &summary.section_bytes {
        println!("  {name:<8} {len:>10} bytes (checksum ok)");
    }
    Ok(())
}

fn cmd_verify(path: &str, args: &[String]) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let t = Instant::now();
    let (artifact, summary) =
        TrainedArtifact::from_bytes_with_summary(&data).map_err(|e| e.to_string())?;
    let loaded = artifact.clone().into_proteus().map_err(|e| e.to_string())?;
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "decode + validate + load: {load_ms:.1} ms ({} sections, every checksum verified)",
        summary.section_bytes.len()
    );

    let probes: Vec<ModelKind> = match flag_value(args, "--probe") {
        Some(list) => parse_kinds(&list)?,
        None => vec![ModelKind::AlexNet],
    };

    if summary.provenance.is_empty() {
        println!("no provenance recorded: skipping the retrain comparison");
    } else {
        let kinds = parse_kinds(&summary.provenance)
            .map_err(|e| format!("provenance is not a zoo corpus ({e}); cannot retrain"))?;
        println!(
            "retraining fresh from provenance [{}] ...",
            summary.provenance
        );
        let t = Instant::now();
        let fresh = Proteus::builder()
            .config(artifact.config().clone())
            .corpus(kinds.iter().map(|&k| build(k)))
            .train()
            .map_err(|e| e.to_string())?;
        let train_ms = t.elapsed().as_secs_f64() * 1e3;
        println!("retrained in {train_ms:.0} ms (warm start was {load_ms:.1} ms)");
        // artifacts written by `train` carry a fully warmed inventory;
        // reproduce the deterministic sweep before comparing bytes
        if summary.sentinel_entries > 0 {
            fresh.warm_inventory();
        }
        // compare against the original file bytes: the retrained state,
        // serialized with the same provenance, must reproduce the artifact
        // byte for byte
        let refreshed = TrainedArtifact::from_proteus(&fresh, summary.provenance.clone());
        if refreshed.to_bytes()[..] != data[..] {
            return Err("retrained state diverges from the artifact".to_string());
        }
        println!("state check: retrained artifact bytes are identical to the file");
        for &probe in &probes {
            let g = build(probe);
            let (a, _) = fresh
                .obfuscate(&g, &TensorMap::new())
                .map_err(|e| e.to_string())?;
            let (b, _) = loaded
                .obfuscate(&g, &TensorMap::new())
                .map_err(|e| e.to_string())?;
            if a.to_bytes() != b.to_bytes() {
                return Err(format!(
                    "obfuscation wire bytes diverge on probe `{}`",
                    probe.name()
                ));
            }
            println!(
                "probe {:<12} fresh-vs-loaded wire bytes identical ({} buckets)",
                probe.name(),
                a.num_buckets()
            );
        }
    }

    // loaded instance must also round-trip an obfuscation on its own
    for &probe in &probes {
        let g = build(probe);
        let (model, secrets) = loaded
            .obfuscate(&g, &TensorMap::new())
            .map_err(|e| e.to_string())?;
        let (back, _) = loaded
            .deobfuscate(&secrets, &model)
            .map_err(|e| e.to_string())?;
        back.validate().map_err(|e| e.to_string())?;
    }
    println!("verify OK");
    Ok(())
}

fn cmd_store_verify(dir: &str) -> Result<(), String> {
    let t = Instant::now();
    // typed failure — Corrupt names the first bad byte offset, Marker a
    // commit marker that cannot be trusted — mapped to a nonzero exit
    let report = Store::verify(dir).map_err(|e| e.to_string())?;
    println!("store               {dir}");
    println!(
        "committed           {} record(s), {} bytes",
        report.records, report.committed_len
    );
    println!("chain digest        {:#018x}", report.chain_digest);
    if report.tail_bytes > 0 {
        println!(
            "uncommitted tail    {} byte(s) (a crash between append and commit;\n\
             \x20                   the next open truncates it — nothing acknowledged is lost)",
            report.tail_bytes
        );
    }
    println!("artifacts           {}", report.artifacts);
    println!("open sessions       {}", report.open_sessions);
    println!("pending lanes       {}", report.pending_lanes);
    println!(
        "store verify OK ({:.1} ms, every checksum and chain link checked)",
        t.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("store") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("verify"), Some(dir)) if !dir.starts_with("--") => cmd_store_verify(dir),
            _ => Err("store expects: store verify DIR".to_string()),
        },
        Some("inspect") => match args.get(1) {
            Some(path) if !path.starts_with("--") => cmd_inspect(path),
            _ => Err("inspect requires PATH".to_string()),
        },
        Some("verify") => match args.get(1) {
            Some(path) if !path.starts_with("--") => cmd_verify(path, &args[2..]),
            _ => Err("verify requires PATH".to_string()),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
