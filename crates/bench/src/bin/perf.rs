//! Rewrite-engine performance tracking: times `Optimizer::optimize` under
//! both profiles and both engines over the full model zoo, plus the
//! end-to-end obfuscate → optimize → deobfuscate pipeline and the
//! per-phase breakdown of a served request (generation / semantic /
//! optimization / wire), and writes `BENCH_opt.json` (mean/p50/p95
//! wall-times per measurement) so the perf trajectory is tracked from
//! PR 2 onward.
//!
//! Every run also *asserts* engine parity (worklist output bit-identical to
//! the retained naive fixpoint on every zoo model) and the fig4 geomean
//! slowdown band, so the binary doubles as a regression gate: CI runs it in
//! smoke mode (`--smoke`, one timing iteration) where the assertions still
//! hold even though the timings are noisy.
//!
//! Usage: `cargo run --release -p proteus-bench --bin perf [-- --smoke] [-- --out PATH]`

use proteus::serve::ServeRuntime;
use proteus::{PartitionSpec, PhaseBreakdown, Proteus, ProteusConfig, SealedBucket, ServeConfig};
use proteus_bench::{latency_triple, print_header, print_row};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::{Engine, Optimizer, Profile};
use std::time::Instant;

/// One timed measurement series, in microseconds of wall time.
struct Series {
    label: String,
    samples: Vec<f64>,
}

impl Series {
    fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
        s[idx]
    }

    fn json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"samples\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}}}",
            self.label,
            self.samples.len(),
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.95),
        )
    }
}

fn time_optimize(
    opt: &Optimizer,
    g: &Graph,
    params: &TensorMap,
    iters: usize,
    label: String,
) -> Series {
    // one warmup iteration outside the series
    let _ = opt.optimize(g, params);
    let samples = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let out = opt.optimize(g, params);
            let us = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(out);
            us
        })
        .collect();
    Series { label, samples }
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn small_protected_model() -> (Graph, TensorMap) {
    use proteus_graph::{Activation, ConvAttrs, Op};
    let mut g = Graph::new("e2e");
    let x = g.input([1, 3, 16, 16]);
    let c1 = g.add(Op::Conv(ConvAttrs::new(3, 16, 3).padding(1)), [x]);
    let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
    let c2 = g.add(Op::Conv(ConvAttrs::new(16, 16, 3).padding(1)), [r1]);
    let a = g.add(Op::Add, [c2, r1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [a]);
    let c3 = g.add(
        Op::Conv(ConvAttrs::new(16, 32, 3).stride(2).padding(1)),
        [r2],
    );
    let r3 = g.add(Op::Activation(Activation::Relu), [c3]);
    let gap = g.add(Op::GlobalAveragePool, [r3]);
    g.set_outputs([gap]);
    let params = TensorMap::init_random(&g, 7);
    (g, params)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_opt.json".to_string());
    let iters = if smoke { 1 } else { 15 };

    let mut series: Vec<Series> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();

    println!(
        "== Optimizer::optimize, worklist vs naive fixpoint ({} iterations/cell) ==\n",
        iters
    );
    let widths = [12usize, 18, 14, 14, 10];
    print_header(
        &["model", "profile", "naive mean", "worklist mean", "speedup"],
        &widths,
    );
    for entry in zoo::all() {
        let kind = entry.kind;
        let g = (entry.build)();
        for profile in Profile::ALL {
            let worklist = Optimizer::with_engine(profile, Engine::Worklist);
            let naive = Optimizer::with_engine(profile, Engine::NaiveFixpoint);

            // Parity gate: identical optimized graphs, params, and rewrite
            // counts — the assertion CI smoke mode exists to run. Covers
            // the full registry (paper + modern) under all three profiles.
            let (gw, pw, sw) = worklist.optimize(&g, &TensorMap::new());
            let (gn, pn, sn) = naive.optimize(&g, &TensorMap::new());
            assert_eq!(gw, gn, "{kind}/{profile:?}: engine outputs diverge");
            assert_eq!(pw, pn, "{kind}/{profile:?}: engine params diverge");
            assert_eq!(
                sw.rewrites, sn.rewrites,
                "{kind}/{profile:?}: rewrite totals diverge"
            );

            let sn = time_optimize(
                &naive,
                &g,
                &TensorMap::new(),
                iters,
                format!("optimize/{kind}/{}/naive", profile.name()),
            );
            let sw = time_optimize(
                &worklist,
                &g,
                &TensorMap::new(),
                iters,
                format!("optimize/{kind}/{}/worklist", profile.name()),
            );
            let speedup = sn.mean() / sw.mean();
            speedups.push(speedup);
            print_row(
                &[
                    kind.to_string(),
                    profile.name().to_string(),
                    format!("{:.0} us", sn.mean()),
                    format!("{:.0} us", sw.mean()),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            series.push(sn);
            series.push(sw);
        }
    }
    let zoo_speedup = geomean(&speedups);
    println!("\nGeomean worklist speedup over naive fixpoint: {zoo_speedup:.2}x");

    // End-to-end pipeline: obfuscate -> optimize every bucket member with
    // the dynamic work queue -> deobfuscate.
    let (g, params) = small_protected_model();
    let cfg = ProteusConfig {
        k: 8,
        partitions: PartitionSpec::Count(3),
        graphrnn: GraphRnnConfig {
            epochs: 2,
            max_nodes: 24,
            ..Default::default()
        },
        topology_pool: 40,
        ..Default::default()
    };
    let proteus = Proteus::train(cfg, &[build(ModelKind::ResNet)]);
    let e2e_iters = if smoke { 1 } else { 5 };
    let samples: Vec<f64> = (0..e2e_iters)
        .map(|_| {
            let t = Instant::now();
            let (model, secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
            let optimized = proteus.optimize_obfuscated(&model, &Optimizer::new(Profile::OrtLike));
            let back = proteus
                .deobfuscate(&secrets, &optimized)
                .expect("deobfuscate");
            let us = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(back);
            us
        })
        .collect();
    let e2e = Series {
        label: "pipeline/obfuscate-optimize-deobfuscate".to_string(),
        samples,
    };
    println!(
        "\nEnd-to-end pipeline (k=8, n=3, {} members): mean {:.0} us",
        (8 + 1) * 3,
        e2e.mean()
    );
    let batch_mean = e2e.mean();
    series.push(e2e);

    // Streamed end-to-end: the session API pipelines the two parties —
    // the optimizer works on frame i while the owner generates frame
    // i + 1. Uses LEGACY_REQUEST_ID so the result must be bit-identical
    // to the batch wrapper above (asserted: this is the session/legacy
    // parity gate in its end-to-end form).
    let optimizer = Optimizer::new(Profile::OrtLike);
    let (batch_model, batch_secrets) = proteus.obfuscate(&g, &params).expect("obfuscate");
    let batch_back = proteus
        .deobfuscate(
            &batch_secrets,
            &proteus.optimize_obfuscated(&batch_model, &optimizer),
        )
        .expect("deobfuscate");
    let samples: Vec<f64> = (0..e2e_iters)
        .map(|_| {
            let t = Instant::now();
            let session = proteus
                .obfuscate_session(&g, &params, proteus::LEGACY_REQUEST_ID)
                .expect("session");
            let (tx, rx) = std::sync::mpsc::channel();
            let back = std::thread::scope(|scope| {
                let producer = scope.spawn(move || {
                    let mut session = session;
                    while let Some(frame) = session.next_frame() {
                        if tx.send(frame).is_err() {
                            break;
                        }
                    }
                    session.finish().expect("secrets")
                });
                let mut optimized = Vec::new();
                for frame in rx {
                    optimized.push(frame.optimize(&optimizer, None));
                }
                let secrets = producer.join().expect("producer thread");
                let mut reassembly = proteus.deobfuscate_session(&secrets);
                for frame in optimized {
                    reassembly.accept(frame).expect("accept");
                }
                reassembly.finish().expect("reassemble")
            });
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(
                back.0, batch_back.0,
                "streamed pipeline diverged from the batch wrapper"
            );
            std::hint::black_box(back);
            us
        })
        .collect();
    let streamed = Series {
        label: "pipeline/streamed-session-overlap".to_string(),
        samples,
    };
    println!(
        "Streamed pipeline (same work, obfuscation/optimization overlapped): mean {:.0} us ({:.2}x vs batch)",
        streamed.mean(),
        batch_mean / streamed.mean(),
    );
    series.push(streamed);

    // Cold start vs warm start: the trained-state artifact replaces the
    // per-process training cost with a load + checksum validation. The
    // warm-started instance must be indistinguishable on the wire, so the
    // parity assertion covers the full model zoo (this is the perf-harness
    // half of the artifact determinism gate; tests/artifact_robustness.rs
    // is the other).
    let artifact_bytes = proteus.to_artifact_bytes();
    let cold_cfg = proteus.config().clone();
    let cold_samples: Vec<f64> = (0..e2e_iters)
        .map(|_| {
            let t = Instant::now();
            let trained = Proteus::train(cold_cfg.clone(), &[build(ModelKind::ResNet)]);
            let us = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(trained);
            us
        })
        .collect();
    let warm_samples: Vec<f64> = (0..e2e_iters)
        .map(|_| {
            let t = Instant::now();
            let loaded = Proteus::from_artifact_bytes(&artifact_bytes).expect("artifact loads");
            let us = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(loaded);
            us
        })
        .collect();
    let cold = Series {
        label: "startup/cold-train".to_string(),
        samples: cold_samples,
    };
    let warm = Series {
        label: "startup/warm-artifact-load".to_string(),
        samples: warm_samples,
    };
    println!(
        "\nCold start (train) {:.0} us vs warm start (artifact load) {:.0} us ({:.1}x faster, {} artifact bytes)",
        cold.mean(),
        warm.mean(),
        cold.mean() / warm.mean(),
        artifact_bytes.len(),
    );
    let warm_proteus = Proteus::from_artifact_bytes(&artifact_bytes).expect("artifact loads");
    for entry in zoo::all() {
        let zoo_model = (entry.build)();
        let (a, _) = proteus
            .obfuscate(&zoo_model, &TensorMap::new())
            .expect("obfuscate");
        let (b, _) = warm_proteus
            .obfuscate(&zoo_model, &TensorMap::new())
            .expect("obfuscate");
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "{}: warm-started instance diverged from the trained one on the wire",
            entry.name
        );
    }
    println!(
        "artifact parity: warm-started wire bytes identical across the {} registry models",
        zoo::COUNT
    );
    series.push(cold);
    series.push(warm);

    // Durable-store recovery time: how long a killed daemon spends
    // replaying its committed WAL (every frame checksum + chain link
    // verified) before it can take traffic. One store, N journaled lane
    // frames; each sample is a full open_or_create on that directory.
    {
        use proteus::store::Store;
        let records = if smoke { 64 } else { 512 };
        let dir = std::env::temp_dir().join(format!("proteus-perf-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = Store::open_or_create(&dir).expect("store creates");
        let frame = vec![0xA5u8; 1024];
        for rid in 0..records as u64 {
            store.record_lane_frame(rid, &frame).expect("journal");
        }
        let committed = store.committed_len();
        drop(store);
        let recovery_samples: Vec<f64> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                let (reopened, report) = Store::open_or_create(&dir).expect("store recovers");
                let us = t.elapsed().as_secs_f64() * 1e6;
                assert_eq!(report.pending_lanes, records, "every lane survives replay");
                std::hint::black_box(reopened);
                us
            })
            .collect();
        let recovery = Series {
            label: format!("store/recovery-replay/{records}x1KiB"),
            samples: recovery_samples,
        };
        println!(
            "\nStore recovery: {} records ({} WAL bytes) replayed + verified in {:.0} us",
            records + 1, // + genesis
            committed,
            recovery.mean(),
        );
        series.push(recovery);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Per-phase breakdown of a served request with the inventory warmed
    // and the optimized cache on: generation/semantic measured by the
    // owner session, optimization/wire by the pool handle. Recorded as
    // four series so the trajectory of each phase is tracked separately.
    let warmed = proteus.warm_inventory();
    let runtime = ServeRuntime::new(
        Optimizer::new(Profile::OrtLike),
        ServeConfig {
            workers: 2,
            window: 2,
            ..Default::default()
        },
    )
    .expect("runtime");
    let mut phase_samples: Vec<PhaseBreakdown> = Vec::new();
    for i in 0..e2e_iters as u64 {
        let rid = 90 + i;
        let mut session = proteus
            .obfuscate_session(&g, &params, rid)
            .expect("session");
        let handle = runtime.handle(rid);
        let n = session.num_buckets();
        let mut got = 0;
        while let Some(frame) = session.next_frame() {
            handle
                .submit_bytes(frame.to_mux_bytes(rid))
                .expect("submit");
            while handle.try_recv().is_some() {
                got += 1;
            }
        }
        while got < n {
            let bytes = handle.recv_bytes().expect("recv");
            std::hint::black_box(SealedBucket::from_mux_bytes(bytes).expect("decode"));
            got += 1;
        }
        phase_samples.push(session.phases().merged(handle.phases()));
    }
    let phase_series = |label: &str, pick: fn(&PhaseBreakdown) -> u64| Series {
        label: format!("phases/serve-request/{label}"),
        samples: phase_samples.iter().map(|p| pick(p) as f64 / 1e3).collect(),
    };
    let phases = [
        phase_series("generation", |p| p.generation_ns),
        phase_series("semantic", |p| p.semantic_ns),
        phase_series("optimization", |p| p.optimization_ns),
        phase_series("wire", |p| p.wire_ns),
    ];
    println!(
        "\nServed-request phases (inventory warmed: {warmed} sentinels): \
         generation {:.0} us, semantic {:.0} us, optimization {:.0} us, wire {:.0} us",
        phases[0].mean(),
        phases[1].mean(),
        phases[2].mean(),
        phases[3].mean(),
    );
    series.extend(phases);

    // fig4 regression band: bit-identical engines must leave the paper
    // reproduction untouched. latency_triple is deterministic, so this is
    // safe to assert even in smoke mode.
    let fig4a = [
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Bert,
        ModelKind::Roberta,
        ModelKind::DistilBert,
    ];
    let slowdowns: Vec<f64> = fig4a
        .iter()
        .map(|&kind| {
            let (_, best, proteus) = latency_triple(&build(kind), Profile::OrtLike, 8, 42);
            proteus / best
        })
        .collect();
    let fig4_geomean = geomean(&slowdowns);
    println!("fig4a geomean slowdown (OrtLike): {fig4_geomean:.3}x (expected 1.07-1.14x)");
    // The band is quoted at two decimals (the seed measured 1.1434x).
    let rounded = (fig4_geomean * 100.0).round() / 100.0;
    assert!(
        (1.07..=1.14).contains(&rounded),
        "fig4 geomean slowdown {fig4_geomean:.4}x left the 1.07-1.14x band"
    );

    let json = format!(
        "{{\n  \"bench\": \"BENCH_opt\",\n  \"mode\": \"{}\",\n  \"iterations\": {},\n  \
         \"zoo_speedup_geomean\": {:.3},\n  \"fig4a_geomean_slowdown\": {:.4},\n  \"series\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        iters,
        zoo_speedup,
        fig4_geomean,
        series
            .iter()
            .map(Series::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    std::fs::write(&out_path, json).expect("write BENCH_opt.json");
    println!("\nwrote {out_path}");

    if !smoke {
        // Floor re-calibrated for the extended registry: the modern small
        // graphs (graphsage, unet) sit near 2x where the worklist's
        // advantage over the naive sweep is structurally smaller, pulling
        // the geomean below the old 3.0x floor of the 13-model matrix.
        assert!(
            zoo_speedup >= 2.5,
            "worklist engine speedup regressed below 2.5x: {zoo_speedup:.2}x"
        );
    }
    println!("parity + fig4 assertions passed");
}
