//! §5.3.3 / Appendix A.8: the expert survey, reproduced mechanically.
//!
//! The paper showed 13 ML researchers 20 subgraphs (10 real from
//! torchvision/HuggingFace, 10 Proteus sentinels of sizes 8-16) and
//! measured 52% accuracy — chance level. Humans judge by visual
//! pattern-matching; `ExpertReviewer` codifies those patterns as explicit
//! rules, so the survey becomes a measurable harness. A sanity arm checks
//! that the same expert *does* beat chance on random-opcode sentinels.
//!
//! Usage: `cargo run --release -p proteus-bench --bin survey [-- --quick] [-- --dot]`

use proteus::{random_opcode_sentinels, Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::ExpertReviewer;
use proteus_bench::AttackScale;
use proteus_graph::{dot::to_dot, Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let emit_dot = std::env::args().any(|a| a == "--dot");
    let scale = if quick {
        AttackScale::quick()
    } else {
        AttackScale::full()
    };
    let trials = if quick { 3 } else { 10 };

    // survey pool: real subgraphs of size 8-16 from image + language models
    let sources = [
        ModelKind::ResNet,
        ModelKind::MobileNet,
        ModelKind::GoogleNet,
        ModelKind::DenseNet,
        ModelKind::Bert,
        ModelKind::DistilBert,
    ];
    let mut pieces: Vec<Graph> = Vec::new();
    for kind in sources {
        let g = build(kind);
        let a = partition_by_size(&g, 10, 8, 3);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).expect("extract");
        pieces.extend(
            plan.pieces
                .iter()
                .map(|p| p.graph.clone())
                .filter(|g| (8..=16).contains(&g.len())),
        );
    }

    let corpus: Vec<Graph> = sources.iter().map(|&k| build(k)).collect();
    let config = ProteusConfig {
        k: 1,
        graphrnn: GraphRnnConfig {
            epochs: scale.rnn_epochs,
            ..Default::default()
        },
        topology_pool: scale.pool,
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let expert = ExpertReviewer::default();

    let mut rng = StdRng::seed_from_u64(99);
    let mut proteus_accs = Vec::new();
    let mut baseline_accs = Vec::new();
    for trial in 0..trials {
        let mut reals: Vec<Graph> = pieces.clone();
        reals.shuffle(&mut rng);
        let reals: Vec<Graph> = reals.into_iter().take(10).collect();
        // 10 Proteus sentinels generated from those same pieces
        let mut sentinels = Vec::new();
        let mut ro_sentinels = Vec::new();
        for r in &reals {
            sentinels.extend(
                proteus
                    .factory()
                    .generate(r, 1, SentinelMode::Generative, &mut rng),
            );
            ro_sentinels.extend(random_opcode_sentinels(
                r,
                1,
                proteus.factory().sampler(),
                proteus.config().beta,
                &mut rng,
            ));
        }
        let survey: Vec<(Graph, bool)> = reals
            .iter()
            .map(|g| (g.clone(), false))
            .chain(sentinels.iter().map(|g| (g.clone(), true)))
            .collect();
        proteus_accs.push(expert.accuracy(&survey));
        let ro_survey: Vec<(Graph, bool)> = reals
            .iter()
            .map(|g| (g.clone(), false))
            .chain(ro_sentinels.iter().map(|g| (g.clone(), true)))
            .collect();
        baseline_accs.push(expert.accuracy(&ro_survey));

        if emit_dot && trial == 0 {
            println!("--- sample real subgraph (DOT) ---\n{}", to_dot(&reals[0]));
            println!("--- sample sentinel (DOT) ---\n{}", to_dot(&sentinels[0]));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\n== Survey (A.8): expert identification accuracy over {trials} 20-graph surveys ==\n"
    );
    println!(
        "expert vs Proteus sentinels:       {:.1}%  (paper: 52%, i.e. chance)",
        mean(&proteus_accs) * 100.0
    );
    println!(
        "expert vs random-opcode sentinels: {:.1}%  (sanity arm: should beat chance)",
        mean(&baseline_accs) * 100.0
    );
}
