//! Figure 5 / Figure 11: distributions of graph statistics (average degree,
//! clustering coefficient, diameter, node count) for real torchvision-style
//! subgraphs vs Proteus-generated sentinels. The paper's claim: the
//! distributions are close enough that statistics-based identification
//! fails. We report mean/std per group and the Kolmogorov–Smirnov distance,
//! plus the heuristic (stats-likelihood) adversary's accuracy.
//!
//! `--naive` ablates Algorithm 1's importance correction.
//!
//! Usage: `cargo run --release -p proteus-bench --bin fig5 [-- --naive]`

use proteus::{Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::StatsAdversary;
use proteus_bench::{print_header, print_row};
use proteus_graph::stats::{ks_distance, mean_std};
use proteus_graph::{Graph, GraphStats, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_partition::{partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let naive = std::env::args().any(|a| a == "--naive");
    // real subgraphs from the CNN zoo (the paper compares against
    // torchvision models)
    let cnn_models = [
        ModelKind::AlexNet,
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Inception,
        ModelKind::MnasNet,
    ];
    let mut real_pieces: Vec<Graph> = Vec::new();
    for kind in cnn_models {
        let g = build(kind);
        let a = partition_by_size(&g, 8, 8, 11);
        let plan = PartitionPlan::extract(&g, &TensorMap::new(), &a).expect("extract");
        real_pieces.extend(plan.pieces.iter().map(|p| p.graph.clone()));
    }

    let config = ProteusConfig {
        k: 4,
        graphrnn: GraphRnnConfig {
            epochs: 10,
            ..Default::default()
        },
        topology_pool: 200,
        ..Default::default()
    };
    let corpus: Vec<Graph> = cnn_models.iter().map(|&k| build(k)).collect();
    let proteus = Proteus::train(config, &corpus);
    let mut rng = StdRng::seed_from_u64(33);

    let mut sentinels: Vec<Graph> = Vec::new();
    for piece in real_pieces.iter().take(60) {
        if naive {
            // ablation: skip the uniform-band importance sampler, drawing
            // topologies straight from the pool density
            let topo = proteus_graphgen::UGraph::from_graph(piece);
            let raw =
                proteus
                    .factory()
                    .sampler()
                    .sample_naive(&topo, proteus.config().beta, 4, &mut rng);
            for t in raw {
                let dag = proteus_graphgen::induce_orientation(&t);
                if let Some(g) = proteus::populate(
                    &dag,
                    proteus::detect_regime(piece),
                    proteus.factory().bigram(),
                    &proteus.config().population,
                    &mut rng,
                ) {
                    sentinels.push(g);
                }
            }
        } else {
            sentinels.extend(proteus.factory().generate(
                piece,
                4,
                SentinelMode::Generative,
                &mut rng,
            ));
        }
    }

    let real_stats: Vec<[f64; 4]> = real_pieces
        .iter()
        .map(|g| GraphStats::of(g).to_vec())
        .collect();
    let gen_stats: Vec<[f64; 4]> = sentinels
        .iter()
        .map(|g| GraphStats::of(g).to_vec())
        .collect();

    println!(
        "\n== Figure 5: graph statistics, real vs generated ({} real, {} sentinel{}) ==\n",
        real_stats.len(),
        gen_stats.len(),
        if naive {
            ", NAIVE sampling ablation"
        } else {
            ""
        }
    );
    let widths = [22usize, 16, 16, 10];
    print_header(
        &["metric", "real mean+-std", "gen mean+-std", "KS dist"],
        &widths,
    );
    for (d, name) in GraphStats::FEATURE_NAMES.iter().enumerate() {
        let real_col: Vec<f64> = real_stats.iter().map(|f| f[d]).collect();
        let gen_col: Vec<f64> = gen_stats.iter().map(|f| f[d]).collect();
        let (rm, rs) = mean_std(&real_col);
        let (gm, gs) = mean_std(&gen_col);
        let ks = ks_distance(&real_col, &gen_col);
        print_row(
            &[
                name.to_string(),
                format!("{rm:.2}+-{rs:.2}"),
                format!("{gm:.2}+-{gs:.2}"),
                format!("{ks:.3}"),
            ],
            &widths,
        );
    }

    // heuristic adversary accuracy on a balanced labelled set
    let adv = StatsAdversary::fit(&real_pieces, 0.05);
    let labelled: Vec<(Graph, bool)> = real_pieces
        .iter()
        .take(sentinels.len())
        .map(|g| (g.clone(), false))
        .chain(sentinels.iter().map(|g| (g.clone(), true)))
        .collect();
    let acc = adv.accuracy(&labelled);
    println!(
        "\nStats-likelihood adversary accuracy: {:.1}% (chance = 50%)",
        acc * 100.0
    );
    println!("(paper: distributions visually indistinguishable; Figure 5/11)");
}
