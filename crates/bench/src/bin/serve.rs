//! Multi-tenant serving load generator: drives the shared-pool
//! [`ServeRuntime`] with an open-loop stream of concurrent obfuscation
//! requests across the model zoo and writes `BENCH_serve.json`
//! (throughput, p50/p95/p99 latency-to-last-frame, peak concurrency,
//! queue depths, and the per-phase time breakdown).
//!
//! Before the load starts, the trained instance's sentinel inventory is
//! warmed ([`SentinelPool`]) so sessions draw pre-built sentinels, and
//! the runtime's [`proteus::OptimizedCache`] replays optimizer outputs for
//! sentinels repeating across requests — `--no-cache` disables the cache
//! to measure its contribution.
//!
//! Every run also *asserts* concurrency parity: each request's optimized
//! frames and reassembled model must be bit-identical to the serial
//! single-session path, so the binary doubles as a regression gate. CI
//! runs it in smoke mode (`--smoke`, one 8-request wave) where the parity
//! assertions still hold even though the timings are noisy.
//!
//! `--net` switches the binary into the *network* loadgen: the same
//! open-loop request mix is driven twice — once against a fresh
//! in-process [`ServeRuntime`], once over real loopback TCP sockets
//! through `proteus-net` (one connection per tenant request, full
//! handshake, wire-v2 frames both ways) — and `BENCH_net.json` records
//! both latency distributions plus the socket overhead. The two waves
//! must produce bit-identical optimized wire bytes, asserted per
//! request.
//!
//! Usage: `cargo run --release -p proteus-bench --bin serve [-- --smoke] [-- --no-cache] [-- --net] [-- --out PATH]`

use proteus::serve::{SentinelPool, ServeRuntime};
use proteus::{
    DeobfuscationSession, PartitionSpec, PhaseBreakdown, Proteus, ProteusConfig, SealedBucket,
    ServeConfig,
};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, ModelKind};
use proteus_opt::{Optimizer, Profile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The full-mode request mix: a rotation over the zoo's CNN family (the
/// transformer models partition into same-sized pieces; the rotation
/// keeps per-request cost bounded while varying shapes and loads).
const ZOO: [ModelKind; 6] = [
    ModelKind::AlexNet,
    ModelKind::MobileNet,
    ModelKind::ResNet,
    ModelKind::DenseNet,
    ModelKind::GoogleNet,
    ModelKind::MnasNet,
];

/// Smoke mode trims the rotation to the two cheapest models — the job
/// exists to keep the binary and its parity assertions from rotting, not
/// to produce meaningful timings on shared runners.
const ZOO_SMOKE: [ModelKind; 2] = [ModelKind::AlexNet, ModelKind::ResNet];

fn request_model(rid: u64, smoke: bool) -> Graph {
    if smoke {
        build(ZOO_SMOKE[rid as usize % ZOO_SMOKE.len()])
    } else {
        build(ZOO[rid as usize % ZOO.len()])
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct RequestResult {
    rid: u64,
    latency_to_last_frame_ms: f64,
    /// Owner-session phases merged with the handle's optimizer-side
    /// phases: where this request's instrumented time went.
    phases: PhaseBreakdown,
    /// The sealed input frames this request submitted (captured so the
    /// serial parity reference re-optimizes the *same* frames without
    /// paying generation twice).
    input_frames: Vec<SealedBucket>,
    secrets: proteus::ObfuscationSecrets,
    optimized_frames: Vec<SealedBucket>,
    reassembled: (Graph, TensorMap),
}

/// One pre-generated tenant request for the network loadgen: wire-v2
/// frames ready to submit, plus the owner's reassembly secrets.
struct PreparedRequest {
    rid: u64,
    frames: Vec<bytes::Bytes>,
    secrets: proteus::ObfuscationSecrets,
}

/// Latency distribution of one measured wave.
struct WaveStats {
    throughput_rps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn wave_stats(mut latencies: Vec<f64>, wall: Duration) -> WaveStats {
    let n = latencies.len();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    WaveStats {
        throughput_rps: n as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
    }
}

/// The `--net` loadgen: the same open-loop wave measured against an
/// in-process runtime and over loopback TCP, with per-request byte
/// parity between the two asserted.
fn run_net_bench(proteus: &Arc<Proteus>, smoke: bool, serve_config: ServeConfig, out_path: &str) {
    use proteus_net::{NetBackend, NetClient, NetServer, NetServerConfig, TenantAuth};

    let requests: u64 = if smoke { 6 } else { 16 };
    let interval = if smoke {
        Duration::ZERO
    } else {
        Duration::from_millis(50)
    };

    // pre-generate every request outside the measured region: generation
    // cost is the owner's and identical for both transports
    println!("== pre-generating {requests} obfuscated requests ==");
    let prepared: Vec<PreparedRequest> = (0..requests)
        .map(|rid| {
            let graph = request_model(rid, smoke);
            let mut session = proteus
                .obfuscate_session(&graph, &TensorMap::new(), rid)
                .expect("session");
            let mut frames = Vec::with_capacity(session.num_buckets());
            while let Some(frame) = session.next_frame() {
                frames.push(frame.to_mux_bytes(rid));
            }
            let secrets = session.finish().expect("secrets");
            PreparedRequest {
                rid,
                frames,
                secrets,
            }
        })
        .collect();

    // wave 1: in-process — a fresh runtime, frames submitted directly
    println!(
        "== in-process wave: {requests} requests, {:.1}ms inter-arrival ==",
        interval.as_secs_f64() * 1e3
    );
    let runtime =
        ServeRuntime::new(Optimizer::new(Profile::OrtLike), serve_config).expect("runtime");
    let t0 = Instant::now() + Duration::from_millis(5);
    let mut inproc: Vec<(u64, f64, Vec<bytes::Bytes>)> = std::thread::scope(|scope| {
        let joins: Vec<_> = prepared
            .iter()
            .map(|req| {
                let runtime = &runtime;
                scope.spawn(move || {
                    let arrival = t0 + interval * req.rid as u32;
                    while Instant::now() < arrival {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    let submitted = Instant::now();
                    let handle = runtime.handle(req.rid);
                    for wire in &req.frames {
                        handle.submit_bytes(wire.clone()).expect("submit");
                    }
                    let mut got = Vec::with_capacity(req.frames.len());
                    while got.len() < req.frames.len() {
                        got.push(handle.recv_bytes().expect("recv"));
                    }
                    (req.rid, submitted.elapsed().as_secs_f64() * 1e3, got)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let inproc_wall = t0.elapsed();
    drop(runtime);

    // wave 2: loopback TCP — a fresh runtime behind the daemon, one
    // connection per request, full handshake, frames both directions on
    // real sockets. Latency starts after connect: it measures the same
    // submit-to-last-frame quantity as the in-process wave.
    println!("== loopback socket wave: {requests} connections ==");
    let server = NetServer::bind(
        NetBackend::Runtime(
            ServeRuntime::new(Optimizer::new(Profile::OrtLike), serve_config).expect("runtime"),
        ),
        proteus.config_fingerprint(),
        NetServerConfig {
            auth: vec![TenantAuth::new("loadgen", "loadgen")],
            ..Default::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();
    let fingerprint = proteus.config_fingerprint();
    let t0 = Instant::now() + Duration::from_millis(5);
    let mut net: Vec<(u64, f64, Vec<bytes::Bytes>)> = std::thread::scope(|scope| {
        let joins: Vec<_> = prepared
            .iter()
            .map(|req| {
                scope.spawn(move || {
                    let arrival = t0 + interval * req.rid as u32;
                    while Instant::now() < arrival {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    let client = NetClient::connect(addr, "loadgen", fingerprint).expect("connect");
                    let submitted = Instant::now();
                    let got = client
                        .run_request(req.rid, req.frames.clone())
                        .expect("request completes");
                    (req.rid, submitted.elapsed().as_secs_f64() * 1e3, got)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let net_wall = t0.elapsed();
    let server_stats = server.shutdown(Duration::from_secs(30));
    assert_eq!(server_stats.requests_completed as u64, requests);
    assert_eq!(server_stats.requests_failed, 0);

    // parity gate: for every request, the bytes that crossed the socket
    // are bit-identical to the in-process runtime's output, and they
    // reassemble into a valid model under the owner's secrets
    println!("== verifying socket-vs-in-process byte parity ==");
    inproc.sort_by_key(|(rid, _, _)| *rid);
    net.sort_by_key(|(rid, _, _)| *rid);
    for (req, ((rid_a, _, got_inproc), (rid_b, _, got_net))) in
        prepared.iter().zip(inproc.iter().zip(&net))
    {
        assert_eq!(*rid_a, req.rid);
        assert_eq!(*rid_b, req.rid);
        let mut a: Vec<Vec<u8>> = got_inproc.iter().map(|b| b.to_vec()).collect();
        let mut b: Vec<Vec<u8>> = got_net.iter().map(|b| b.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "request {}: socket bytes diverged from the in-process path",
            req.rid
        );
        let mut reassembly = DeobfuscationSession::new(&req.secrets);
        for raw in got_net {
            reassembly.accept_mux_bytes(raw.clone()).expect("accept");
        }
        let (graph, _params) = reassembly.finish().expect("finish");
        graph.validate().expect("reassembled model validates");
    }
    println!("   all {requests} requests bit-identical across transports");

    let inproc_stats = wave_stats(inproc.iter().map(|(_, l, _)| *l).collect(), inproc_wall);
    let net_stats = wave_stats(net.iter().map(|(_, l, _)| *l).collect(), net_wall);
    println!(
        "\nin-process   p50 {:7.1}ms  p95 {:7.1}ms  p99 {:7.1}ms  {:7.1} req/s",
        inproc_stats.p50, inproc_stats.p95, inproc_stats.p99, inproc_stats.throughput_rps
    );
    println!(
        "loopback     p50 {:7.1}ms  p95 {:7.1}ms  p99 {:7.1}ms  {:7.1} req/s",
        net_stats.p50, net_stats.p95, net_stats.p99, net_stats.throughput_rps
    );
    println!(
        "socket tax   p50 {:+.1}ms ({:.2}x)",
        net_stats.p50 - inproc_stats.p50,
        net_stats.p50 / inproc_stats.p50
    );

    let json = format!(
        "{{\n  \"bench\": \"BENCH_net\",\n  \"mode\": \"{}\",\n  \"requests\": {},\n  \
         \"open_loop_interval_ms\": {:.1},\n  \
         \"transport\": {{\"kind\": \"loopback TCP, one connection per request\", \
         \"handshake\": \"outside the latency window\", \"workers\": {}, \"window\": {}}},\n  \
         \"in_process\": {{\"throughput_rps\": {:.1}, \"latency_to_last_frame_ms\": \
         {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}}}}},\n  \
         \"loopback_socket\": {{\"throughput_rps\": {:.1}, \"latency_to_last_frame_ms\": \
         {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}}}}},\n  \
         \"socket_overhead\": {{\"p50_ms\": {:.2}, \"p50_ratio\": {:.3}}},\n  \
         \"parity\": \"per-request optimized wire bytes bit-identical across transports (asserted)\"\n}}\n",
        if smoke { "smoke" } else { "full" },
        requests,
        interval.as_secs_f64() * 1e3,
        serve_config.workers,
        serve_config.window,
        inproc_stats.throughput_rps,
        inproc_stats.p50,
        inproc_stats.p95,
        inproc_stats.p99,
        net_stats.throughput_rps,
        net_stats.p50,
        net_stats.p95,
        net_stats.p99,
        net_stats.p50 - inproc_stats.p50,
        net_stats.p50 / inproc_stats.p50,
    );
    std::fs::write(out_path, json).expect("write BENCH_net.json");
    println!("\nwrote {out_path}");
    println!("parity assertions passed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let net_mode = args.iter().any(|a| a == "--net");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if net_mode {
                "BENCH_net.json".to_string()
            } else {
                "BENCH_serve.json".to_string()
            }
        });
    let requests: u64 = if smoke { 8 } else { 24 };
    let interval = if smoke {
        Duration::ZERO
    } else {
        Duration::from_millis(100)
    };
    let serve_config = ServeConfig {
        workers: 4,
        window: 2,
        cache_capacity: if no_cache {
            0
        } else {
            ServeConfig::default().cache_capacity
        },
        ..Default::default()
    };

    println!("== training shared Proteus instance ==");
    let proteus = Proteus::builder()
        .config(ProteusConfig {
            k: 3,
            // the paper's subgraph-size sweet spot: pieces stay near the
            // generator's topology sizes, so per-frame cost is bounded
            // and bucket counts scale with model size
            partitions: PartitionSpec::TargetSize(8),
            graphrnn: GraphRnnConfig {
                epochs: 3,
                max_nodes: 20,
                ..Default::default()
            },
            topology_pool: 40,
            ..Default::default()
        })
        .corpus(
            [
                ModelKind::ResNeXt,
                ModelKind::Inception,
                ModelKind::SEResNet,
            ]
            .iter()
            .map(|&k| build(k)),
        )
        .train_shared()
        .expect("train");

    // warm the sentinel inventory before any request arrives: sentinels
    // are pure functions of the trained state, so this work happens once
    // per process instead of inline on every request's critical path
    println!("== warming sentinel inventory ==");
    let warm_start = Instant::now();
    let warmer = SentinelPool::spawn(Arc::clone(&proteus));
    let warmed = warmer.join();
    let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "   {warmed} sentinels built in {warm_ms:.0}ms ({} inventory keys)",
        proteus.inventory().len()
    );

    if net_mode {
        run_net_bench(&proteus, smoke, serve_config, &out_path);
        return;
    }

    let runtime =
        ServeRuntime::new(Optimizer::new(Profile::OrtLike), serve_config).expect("runtime");
    println!(
        "== open-loop load: {requests} requests, {:.1}ms inter-arrival, {} workers, window {}, cache {} ==",
        interval.as_secs_f64() * 1e3,
        runtime.stats().workers,
        serve_config.window,
        if no_cache { "off" } else { "on" },
    );

    // open-loop generator: request i arrives at t0 + i*interval whether or
    // not earlier requests finished — the pool must absorb the burst
    let active = AtomicUsize::new(0);
    let max_active = AtomicUsize::new(0);
    let t0 = Instant::now() + Duration::from_millis(5);
    let mut results: Vec<RequestResult> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..requests)
            .map(|rid| {
                let proteus = &proteus;
                let runtime = &runtime;
                let active = &active;
                let max_active = &max_active;
                scope.spawn(move || {
                    let arrival = t0 + interval * rid as u32;
                    while Instant::now() < arrival {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    // latency is measured from the *actual* submit
                    // timestamp: on an oversubscribed box the spin-wait
                    // overshoots its tick, and charging that scheduling
                    // delay to the runtime misstated per-request latency
                    let submitted = Instant::now();
                    let now_active = active.fetch_add(1, Ordering::SeqCst) + 1;
                    max_active.fetch_max(now_active, Ordering::SeqCst);

                    let graph = request_model(rid, smoke);
                    let mut session = proteus
                        .obfuscate_session(&graph, &TensorMap::new(), rid)
                        .expect("session");
                    let handle = runtime.handle(rid);
                    let n = session.num_buckets();
                    let mut input_frames: Vec<SealedBucket> = Vec::with_capacity(n);
                    let mut optimized: Vec<SealedBucket> = Vec::with_capacity(n);
                    // the v2 multiplexed byte stream is the deployment
                    // shape, and it keeps the handle's wire phase honest
                    while let Some(frame) = session.next_frame() {
                        input_frames.push(frame.clone());
                        handle
                            .submit_bytes(frame.to_mux_bytes(rid))
                            .expect("submit");
                        while let Some(done) = handle.try_recv() {
                            optimized.push(done);
                        }
                    }
                    while optimized.len() < n {
                        let bytes = handle.recv_bytes().expect("recv");
                        let (_, frame) = SealedBucket::from_mux_bytes(bytes).expect("decode");
                        optimized.push(frame);
                    }
                    // the measured quantity: submit -> last optimized
                    // frame received (includes queueing behind tenants)
                    let latency_to_last_frame_ms = submitted.elapsed().as_secs_f64() * 1e3;
                    active.fetch_sub(1, Ordering::SeqCst);
                    let phases = session.phases().merged(handle.phases());

                    let secrets = session.finish().expect("secrets");
                    let mut reassembly = DeobfuscationSession::new(&secrets);
                    optimized.sort_by_key(|f| f.bucket_index);
                    for f in &optimized {
                        reassembly.accept(f.clone()).expect("accept");
                    }
                    let reassembled = reassembly.finish().expect("finish");
                    RequestResult {
                        rid,
                        latency_to_last_frame_ms,
                        phases,
                        input_frames,
                        secrets,
                        optimized_frames: optimized,
                        reassembled,
                    }
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    let stats = runtime.stats();
    let peak_concurrency = max_active.load(Ordering::SeqCst);

    // parity gate: every request bit-identical to the serial path —
    // the captured input frames re-optimized one member at a time,
    // with no pool, no cache, and no warm inventory involved
    println!("== verifying parity against the serial session path ==");
    let optimizer = Optimizer::new(Profile::OrtLike);
    for r in &results {
        let want_frames: Vec<SealedBucket> = r
            .input_frames
            .iter()
            .map(|f| f.optimize(&optimizer, Some(1)))
            .collect();
        assert_eq!(
            r.optimized_frames.len(),
            want_frames.len(),
            "request {}: frame count diverged",
            r.rid
        );
        for (got, want) in r.optimized_frames.iter().zip(&want_frames) {
            assert_eq!(
                got.to_bytes().to_vec(),
                want.to_bytes().to_vec(),
                "request {}: optimized frame {} diverged from serial path",
                r.rid,
                want.bucket_index
            );
        }
        let mut reassembly = DeobfuscationSession::new(&r.secrets);
        for f in want_frames {
            reassembly.accept(f).expect("accept");
        }
        let (want_graph, want_params) = reassembly.finish().expect("finish");
        assert_eq!(
            r.reassembled.0, want_graph,
            "request {}: reassembled graph diverged",
            r.rid
        );
        assert_eq!(
            r.reassembled.1, want_params,
            "request {}: reassembled tensors diverged",
            r.rid
        );
    }
    println!(
        "   all {} requests bit-identical to the serial path",
        results.len()
    );

    let phase_total = results
        .iter()
        .fold(PhaseBreakdown::default(), |acc, r| acc.merged(r.phases));
    results.sort_by(|a, b| {
        a.latency_to_last_frame_ms
            .partial_cmp(&b.latency_to_last_frame_ms)
            .expect("finite latencies")
    });
    let latencies: Vec<f64> = results.iter().map(|r| r.latency_to_last_frame_ms).collect();
    let throughput = requests as f64 / wall.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "\nthroughput        {throughput:8.1} req/s ({requests} requests in {:.1}ms)",
        wall.as_secs_f64() * 1e3
    );
    println!("latency to last   p50 {p50:7.1}ms  p95 {p95:7.1}ms  p99 {p99:7.1}ms");
    println!("peak concurrency  {peak_concurrency} requests in flight");
    println!(
        "pool              {} workers, {} member tasks, max queue depth {}",
        stats.workers, stats.tasks_executed, stats.max_queue_depth
    );
    println!(
        "cache             {} hits, {} misses, {} resident entries",
        stats.cache_hits, stats.cache_misses, stats.cache_entries
    );
    println!(
        "phases (total)    generation {:.1}ms, semantic {:.1}ms, optimization {:.1}ms, wire {:.1}ms",
        PhaseBreakdown::ms(phase_total.generation_ns),
        PhaseBreakdown::ms(phase_total.semantic_ns),
        PhaseBreakdown::ms(phase_total.optimization_ns),
        PhaseBreakdown::ms(phase_total.wire_ns),
    );

    if !smoke {
        // the warm path must actually be warm: with the inventory built
        // ahead of traffic and the cache replaying repeated sentinels,
        // the pool executes far fewer tasks than total members, and p50
        // sits an order of magnitude under the inline-generation
        // baseline (PR 4 measured p50 = 175115ms at this exact load)
        if !no_cache {
            assert!(
                stats.cache_hits > 0,
                "full run with cache on produced no cache hits"
            );
            assert!(
                p50 < 17_511.0,
                "p50 {p50:.0}ms is not >= 10x under the 175115ms inline baseline"
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_serve\",\n  \"mode\": \"{}\",\n  \"requests\": {},\n  \
         \"open_loop_interval_ms\": {:.1},\n  \"latency_clock\": \"actual submit timestamp\",\n  \
         \"workers\": {},\n  \"window\": {},\n  \"cache_capacity\": {},\n  \
         \"warm\": {{\"sentinels_built\": {}, \"inventory_keys\": {}, \"warm_ms\": {:.1}}},\n  \
         \"throughput_rps\": {:.1},\n  \"latency_to_last_frame_ms\": \
         {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}}},\n  \
         \"phase_breakdown_ms\": {{\"generation\": {:.2}, \"semantic\": {:.2}, \
         \"optimization\": {:.2}, \"wire\": {:.2}}},\n  \
         \"peak_concurrent_requests\": {},\n  \"max_queue_depth\": {},\n  \
         \"tasks_executed\": {},\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},\n  \
         \"parity\": \"per-request outputs bit-identical to the serial session path (asserted)\"\n}}\n",
        if smoke { "smoke" } else { "full" },
        requests,
        interval.as_secs_f64() * 1e3,
        stats.workers,
        serve_config.window,
        serve_config.cache_capacity,
        warmed,
        proteus.inventory().len(),
        warm_ms,
        throughput,
        p50,
        p95,
        p99,
        PhaseBreakdown::ms(phase_total.generation_ns),
        PhaseBreakdown::ms(phase_total.semantic_ns),
        PhaseBreakdown::ms(phase_total.optimization_ns),
        PhaseBreakdown::ms(phase_total.wire_ns),
        peak_concurrency,
        stats.max_queue_depth,
        stats.tasks_executed,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_entries,
    );
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("\nwrote {out_path}");
    println!("parity assertions passed");
}
