//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each `src/bin/fig*.rs` binary reproduces one experiment; this library
//! holds the protocol code they share: leave-one-out sentinel factories,
//! bucket construction, the partition→optimize→reassemble latency pipeline,
//! and table printing. See EXPERIMENTS.md for the experiment index.

use proteus::{random_opcode_sentinels, Proteus, ProteusConfig, SentinelMode};
use proteus_adversary::{
    Example, LabelledBucket, SageClassifier, SageConfig, StructuralAttacker, StructuralConfig,
    StructuralExample,
};
use proteus_graph::{Graph, TensorMap};
use proteus_graphgen::GraphRnnConfig;
use proteus_models::{build, zoo, ModelKind};
use proteus_opt::{Optimizer, Profile};
use proteus_partition::{partition_balanced, partition_by_size, PartitionPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Returns `(unoptimized, best_attainable, proteus)` latency estimates in
/// microseconds for a model under a profile (the three bars of Figure 4).
///
/// "Proteus" optimizes each partition independently and reassembles —
/// optimizations cannot cross partition boundaries, which is where the
/// slowdown relative to Best Attainable comes from.
pub fn latency_triple(
    graph: &Graph,
    profile: Profile,
    target_size: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let optimizer = Optimizer::new(profile);
    let unopt = optimizer.estimate_us(graph).expect("model infers");
    let (best_graph, _, _) = optimizer.optimize(graph, &TensorMap::new());
    let best = optimizer
        .estimate_us(&best_graph)
        .expect("optimized infers");

    let assignment = partition_by_size(graph, target_size, 16, seed);
    let plan =
        PartitionPlan::extract(graph, &TensorMap::new(), &assignment).expect("extraction succeeds");
    let optimized: Vec<(Graph, TensorMap)> = plan
        .pieces
        .iter()
        .map(|p| {
            let (g, params, _) = optimizer.optimize(&p.graph, &p.params);
            (g, params)
        })
        .collect();
    let (merged, _) = plan.reassemble(&optimized).expect("reassembly succeeds");
    let proteus = optimizer.estimate_us(&merged).expect("merged infers");
    (unopt, best, proteus)
}

/// Same as [`latency_triple`] but with an explicit partition count and the
/// option to disable the balance restarts (the `--raw-ks` ablation).
pub fn latency_triple_n(
    graph: &Graph,
    profile: Profile,
    n: usize,
    balanced: bool,
    seed: u64,
) -> (f64, f64, f64) {
    let optimizer = Optimizer::new(profile);
    let unopt = optimizer.estimate_us(graph).expect("model infers");
    let (best_graph, _, _) = optimizer.optimize(graph, &TensorMap::new());
    let best = optimizer
        .estimate_us(&best_graph)
        .expect("optimized infers");
    let restarts = if balanced { 16 } else { 1 };
    let assignment = partition_balanced(graph, n, restarts, seed);
    let plan =
        PartitionPlan::extract(graph, &TensorMap::new(), &assignment).expect("extraction succeeds");
    let optimized: Vec<(Graph, TensorMap)> = plan
        .pieces
        .iter()
        .map(|p| {
            let (g, params, _) = optimizer.optimize(&p.graph, &p.params);
            (g, params)
        })
        .collect();
    let (merged, _) = plan.reassemble(&optimized).expect("reassembly succeeds");
    let proteus = optimizer.estimate_us(&merged).expect("merged infers");
    (unopt, best, proteus)
}

/// Experiment-scale knobs shared by the attack harnesses.
#[derive(Debug, Clone, Copy)]
pub struct AttackScale {
    /// Sentinels per protected subgraph for the attacked model (`k`).
    pub k: usize,
    /// Sentinels per training subgraph (classifier training data).
    pub k_train: usize,
    /// GraphRNN epochs.
    pub rnn_epochs: usize,
    /// GraphRNN sample-pool size.
    pub pool: usize,
    /// GNN classifier epochs.
    pub gnn_epochs: usize,
}

impl AttackScale {
    /// Paper-scale settings.
    pub fn full() -> AttackScale {
        AttackScale {
            k: 20,
            k_train: 4,
            rnn_epochs: 10,
            pool: 150,
            gnn_epochs: 8,
        }
    }

    /// Reduced settings for `--quick` runs.
    pub fn quick() -> AttackScale {
        AttackScale {
            k: 8,
            k_train: 2,
            rnn_epochs: 4,
            pool: 60,
            gnn_epochs: 5,
        }
    }
}

/// Subgraph material for one model: the real pieces plus Proteus and
/// random-opcode sentinels for each piece.
#[derive(Debug)]
pub struct ModelMaterial {
    pub kind: ModelKind,
    pub n: usize,
    pub pieces: Vec<Graph>,
    pub proteus_sentinels: Vec<Vec<Graph>>,
    pub baseline_sentinels: Vec<Vec<Graph>>,
}

/// Builds the leave-one-out sentinel material for `kind`: the factory is
/// trained on every model in the zoo registry *except* the protected one
/// (paper §5.3.2 protocol, extended to the full registry), then generates
/// `k` sentinels per piece.
pub fn build_material(kind: ModelKind, n: usize, scale: AttackScale, seed: u64) -> ModelMaterial {
    let corpus: Vec<Graph> = zoo::all()
        .iter()
        .filter(|e| e.kind != kind)
        .map(|e| (e.build)())
        .collect();
    let config = ProteusConfig {
        k: scale.k,
        graphrnn: GraphRnnConfig {
            epochs: scale.rnn_epochs,
            ..Default::default()
        },
        topology_pool: scale.pool,
        seed,
        ..Default::default()
    };
    let proteus = Proteus::train(config, &corpus);
    let graph = build(kind);
    let assignment = partition_balanced(&graph, n, 16, seed);
    let plan = PartitionPlan::extract(&graph, &TensorMap::new(), &assignment)
        .expect("extraction succeeds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let mut pieces = Vec::new();
    let mut proteus_sentinels = Vec::new();
    let mut baseline_sentinels = Vec::new();
    for piece in &plan.pieces {
        let s =
            proteus
                .factory()
                .generate(&piece.graph, scale.k, SentinelMode::Generative, &mut rng);
        let b = random_opcode_sentinels(
            &piece.graph,
            scale.k,
            proteus.factory().sampler(),
            proteus.config().beta,
            &mut rng,
        );
        pieces.push(piece.graph.clone());
        proteus_sentinels.push(s);
        baseline_sentinels.push(b);
    }
    ModelMaterial {
        kind,
        n,
        pieces,
        proteus_sentinels,
        baseline_sentinels,
    }
}

/// Labelled buckets for the attack evaluation.
pub fn buckets_of(material: &ModelMaterial, use_baseline: bool) -> Vec<LabelledBucket> {
    material
        .pieces
        .iter()
        .zip(if use_baseline {
            &material.baseline_sentinels
        } else {
            &material.proteus_sentinels
        })
        .map(|(real, sentinels)| LabelledBucket {
            real: real.clone(),
            sentinels: sentinels.clone(),
        })
        .collect()
}

/// Training examples from *other* models' material (leave-one-out).
pub fn training_examples(
    materials: &[ModelMaterial],
    holdout: ModelKind,
    use_baseline: bool,
    k_train: usize,
) -> Vec<Example> {
    let mut out = Vec::new();
    for m in materials.iter().filter(|m| m.kind != holdout) {
        let sentinels = if use_baseline {
            &m.baseline_sentinels
        } else {
            &m.proteus_sentinels
        };
        for (piece, fakes) in m.pieces.iter().zip(sentinels) {
            out.push(Example::new(piece, false));
            for f in fakes.iter().take(k_train) {
                out.push(Example::new(f, true));
            }
        }
    }
    out
}

/// Trains the paper's GNN adversary on the leave-one-out example set.
pub fn train_adversary(examples: &[Example], epochs: usize, seed: u64) -> SageClassifier {
    let mut clf = SageClassifier::new(
        SageConfig {
            epochs,
            ..Default::default()
        },
        seed,
    );
    clf.train(examples, seed ^ 0x1234);
    clf
}

/// Structural-attacker training examples from *other* models' material
/// (leave-one-out), featurized with the whole-graph summary.
pub fn structural_examples(
    materials: &[ModelMaterial],
    holdout: ModelKind,
    use_baseline: bool,
    k_train: usize,
) -> Vec<StructuralExample> {
    let mut out = Vec::new();
    for m in materials.iter().filter(|m| m.kind != holdout) {
        let sentinels = if use_baseline {
            &m.baseline_sentinels
        } else {
            &m.proteus_sentinels
        };
        for (piece, fakes) in m.pieces.iter().zip(sentinels) {
            out.push(StructuralExample::new(piece, false));
            for f in fakes.iter().take(k_train) {
                out.push(StructuralExample::new(f, true));
            }
        }
    }
    out
}

/// Trains the learned structural attacker on the leave-one-out set.
pub fn train_structural_adversary(
    examples: &[StructuralExample],
    epochs: usize,
    seed: u64,
) -> StructuralAttacker {
    let mut clf = StructuralAttacker::new(
        StructuralConfig {
            epochs,
            ..Default::default()
        },
        seed,
    );
    clf.train(examples, seed ^ 0x1234);
    clf
}

/// Mean of a seeded measurement over a fixed seed set — the de-flake
/// pattern for adversary accuracy pins: single training draws are noisy,
/// so bands are pinned on the average over ≥3 fixed seeds.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn mean_over_seeds(seeds: &[u64], mut f: impl FnMut(u64) -> f64) -> f64 {
    assert!(!seeds.is_empty(), "seed averaging needs at least one seed");
    seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64
}

/// The fixed seed set used by the adversary regression suites, overridable
/// via `PROTEUS_ADVERSARY_SEEDS` (comma-separated u64s) so CI can run the
/// same bands under alternate seeds.
pub fn adversary_seeds() -> Vec<u64> {
    match std::env::var("PROTEUS_ADVERSARY_SEEDS") {
        Ok(csv) => {
            let seeds: Vec<u64> = csv
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("PROTEUS_ADVERSARY_SEEDS: bad u64 `{s}`"))
                })
                .collect();
            assert!(!seeds.is_empty(), "PROTEUS_ADVERSARY_SEEDS is empty");
            seeds
        }
        Err(_) => vec![0x5EED, 0xBEEF, 0xCAFE],
    }
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Prints a table header with a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_triple_orders_sanely() {
        let g = build(ModelKind::ResNet);
        let (unopt, best, proteus) = latency_triple(&g, Profile::OrtLike, 8, 42);
        assert!(best < unopt, "best {best} !< unopt {unopt}");
        assert!(
            proteus >= best * 0.999,
            "proteus {proteus} beats best {best}?"
        );
        assert!(proteus < unopt, "proteus {proteus} !< unopt {unopt}");
    }

    #[test]
    fn quick_material_has_expected_shape() {
        let scale = AttackScale {
            k: 2,
            k_train: 1,
            rnn_epochs: 1,
            pool: 15,
            gnn_epochs: 1,
        };
        let m = build_material(ModelKind::AlexNet, 3, scale, 7);
        assert_eq!(m.pieces.len(), 3);
        assert!(m.proteus_sentinels.iter().all(|s| s.len() == 2));
        assert!(m.baseline_sentinels.iter().all(|s| s.len() == 2));
    }
}
