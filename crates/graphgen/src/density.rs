//! Density estimation over graph statistics (paper Algorithm 1, line 3).
//!
//! Proteus needs the density `p(x)` of the GraphRNN pool's graph-statistic
//! vectors `x = [avg_degree, clustering, diameter, num_nodes]` so that
//! importance sampling can flatten the pool's distribution into a uniform
//! band around the protected subgraph. A product of per-dimension Gaussian
//! kernel density estimates is used (the statistics are weakly coupled at
//! subgraph scale, and the paper only requires a density *estimate*).

/// Per-dimension Gaussian KDE with Silverman bandwidth.
#[derive(Debug, Clone)]
pub struct Kde1d {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde1d {
    /// Fits a 1-D KDE.
    pub fn fit(samples: &[f64]) -> Kde1d {
        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        // Silverman's rule of thumb, floored so degenerate dims still work.
        let bandwidth = (1.06 * std * n.powf(-0.2)).max(1e-3);
        Kde1d {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// Estimated density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&s| (-(x - s) * (x - s) / (2.0 * h * h)).exp())
            .sum::<f64>()
            * norm
    }

    /// The fitted bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Population standard deviation of the fitted sample.
    pub fn sample_std(&self) -> f64 {
        let n = self.samples.len().max(1) as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        (self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

/// Product density over the four graph statistics.
#[derive(Debug, Clone)]
pub struct StatsDensity {
    dims: Vec<Kde1d>,
}

impl StatsDensity {
    /// Fits a density to feature vectors (each `[f64; 4]`).
    pub fn fit(features: &[[f64; 4]]) -> StatsDensity {
        let dims = (0..4)
            .map(|d| {
                let col: Vec<f64> = features.iter().map(|f| f[d]).collect();
                Kde1d::fit(&col)
            })
            .collect();
        StatsDensity { dims }
    }

    /// Estimated joint density at `x` (product of marginals).
    pub fn density(&self, x: &[f64; 4]) -> f64 {
        self.dims
            .iter()
            .zip(x)
            .map(|(kde, &v)| kde.density(v))
            .product()
    }

    /// Per-dimension sample standard deviations (used to scale the uniform
    /// band of Algorithm 1).
    pub fn dim_stds(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (d, kde) in self.dims.iter().enumerate() {
            out[d] = kde.sample_std();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kde_peaks_at_data() {
        let kde = Kde1d::fit(&[0.0, 0.0, 0.0, 10.0]);
        assert!(kde.density(0.0) > kde.density(5.0));
        assert!(kde.density(0.0) > kde.density(10.0));
    }

    #[test]
    fn kde_integrates_to_one_approximately() {
        let kde = Kde1d::fit(&[1.0, 2.0, 3.0, 4.0]);
        let mut integral = 0.0;
        let (lo, hi, steps) = (-10.0, 15.0, 2500);
        let dx = (hi - lo) / steps as f64;
        for i in 0..steps {
            integral += kde.density(lo + (i as f64 + 0.5) * dx) * dx;
        }
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn product_density_composes() {
        let features = [
            [1.0, 0.1, 3.0, 10.0],
            [1.2, 0.0, 4.0, 12.0],
            [0.9, 0.2, 3.0, 9.0],
        ];
        let d = StatsDensity::fit(&features);
        let near = d.density(&[1.0, 0.1, 3.0, 10.0]);
        let far = d.density(&[5.0, 0.9, 20.0, 50.0]);
        assert!(near > far * 10.0, "near {near} far {far}");
    }

    #[test]
    fn degenerate_dimension_does_not_blow_up() {
        let features = [[1.0, 0.0, 2.0, 8.0]; 5];
        let d = StatsDensity::fit(&features);
        assert!(d.density(&[1.0, 0.0, 2.0, 8.0]).is_finite());
    }
}
