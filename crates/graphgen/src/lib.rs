//! Sentinel topology generation for Proteus (paper §4.1.2, Algorithms 1 & 3).
//!
//! The pipeline implemented here mirrors the paper's topology-selection
//! stage end to end:
//!
//! 1. [`graphrnn::GraphRnn`] — an autoregressive generator (GraphRNN-S)
//!    trained on BFS adjacency sequences ([`bfs_seq`]) of real model
//!    subgraphs, producing a pool of realistic undirected topologies.
//! 2. [`sample::TopologySampler`] — Algorithm 1: importance sampling from
//!    the pool so that the sentinel graph statistics form a uniform band
//!    around the protected subgraph's statistics.
//! 3. [`orient::induce_orientation`] — Algorithm 3: converting undirected
//!    samples into DAGs via diameter-endpoint BFS orientation.
//! 4. [`mod@perturb`] — the alternative generator for protected models that
//!    resemble popular architectures.
//!
//! ```
//! use proteus_graphgen::{GraphRnn, GraphRnnConfig, UGraph, induce_orientation};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // a tiny corpus of chain topologies
//! let corpus: Vec<UGraph> = (5..9).map(|n| {
//!     let mut g = UGraph::new(n);
//!     for i in 1..n { g.add_edge(i - 1, i); }
//!     g
//! }).collect();
//!
//! let mut model = GraphRnn::new(GraphRnnConfig { epochs: 2, ..Default::default() }, 0);
//! model.train(&corpus, 1);
//! let mut rng = StdRng::seed_from_u64(2);
//! let topo = model.sample(&mut rng);
//! let dag = induce_orientation(&topo);
//! assert!(dag.is_acyclic());
//! ```

pub mod bfs_seq;
pub mod density;
pub mod graphrnn;
pub mod orient;
pub mod perturb;
pub mod sample;
pub mod ugraph;

pub use density::{Kde1d, StatsDensity};
pub use graphrnn::{GraphRnn, GraphRnnConfig};
pub use orient::induce_orientation;
pub use perturb::{perturb, perturb_many, PerturbConfig};
pub use sample::TopologySampler;
pub use ugraph::{Dag, UGraph};

use proteus_graph::Graph;

/// Builds an (undirected) topology corpus from computational graphs —
/// typically the subgraphs of a partitioned model zoo, which is exactly
/// what the paper trains GraphRNN on.
pub fn topology_corpus(graphs: &[Graph]) -> Vec<UGraph> {
    graphs.iter().map(UGraph::from_graph).collect()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn arb_ugraph() -> impl Strategy<Value = UGraph> {
        (
            2usize..20,
            proptest::collection::vec((0usize..40, 0usize..40), 1..60),
        )
            .prop_map(|(n, pairs)| {
                let mut g = UGraph::new(n);
                // spanning chain keeps it connected
                for i in 1..n {
                    g.add_edge(i - 1, i);
                }
                for (a, b) in pairs {
                    g.add_edge(a % n, b % n);
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn orientation_yields_dag_with_all_edges(g in arb_ugraph()) {
            let dag = induce_orientation(&g);
            prop_assert!(dag.is_acyclic());
            prop_assert_eq!(dag.edges().len(), g.edge_count());
            prop_assert_eq!(dag.len(), g.len());
        }

        #[test]
        fn bfs_roundtrip_with_full_lookback(g in arb_ugraph(), seed in 0u64..100) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let seq = bfs_seq::encode(&g, g.len(), &mut rng);
            let back = seq.to_graph();
            prop_assert_eq!(back.edge_count(), g.edge_count());
        }
    }
}
