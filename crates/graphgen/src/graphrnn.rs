//! GraphRNN-S: autoregressive graph topology generation (You et al., 2018),
//! as used by Proteus' sentinel topology stage (paper §4.1.2).
//!
//! A node-level GRU consumes the previous node's adjacency vector and emits
//! a hidden state from which an edge MLP predicts the new node's connections
//! to the previous `M` nodes. Training maximizes the likelihood of BFS
//! adjacency sequences of *real* model subgraphs; sampling replays the model
//! autoregressively until it emits an all-zero (end-of-sequence) vector.

use crate::bfs_seq::{encode, AdjSeq};
use crate::ugraph::UGraph;
use proteus_nn::{Adam, GruCell, Linear, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the generator.
#[derive(Debug, Clone, Copy)]
pub struct GraphRnnConfig {
    /// BFS lookback window (edge-vector width).
    pub m: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Edge-MLP hidden width.
    pub mlp_hidden: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Maximum nodes per sampled graph.
    pub max_nodes: usize,
}

impl Default for GraphRnnConfig {
    fn default() -> Self {
        GraphRnnConfig {
            m: 8,
            hidden: 32,
            mlp_hidden: 32,
            epochs: 12,
            lr: 0.01,
            max_nodes: 40,
        }
    }
}

/// A trained GraphRNN-S generator.
#[derive(Debug)]
pub struct GraphRnn {
    cfg: GraphRnnConfig,
    store: ParamStore,
    gru: GruCell,
    mlp1: Linear,
    mlp2: Linear,
}

impl GraphRnn {
    /// Initializes an untrained model.
    pub fn new(cfg: GraphRnnConfig, seed: u64) -> GraphRnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gru = GruCell::new("rnn", cfg.m, cfg.hidden, &mut store, &mut rng);
        let mlp1 = Linear::new("edge1", cfg.hidden, cfg.mlp_hidden, &mut store, &mut rng);
        let mlp2 = Linear::new("edge2", cfg.mlp_hidden, cfg.m, &mut store, &mut rng);
        GraphRnn {
            cfg,
            store,
            gru,
            mlp1,
            mlp2,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphRnnConfig {
        &self.cfg
    }

    /// Snapshots the trained weights as `(name, matrix)` pairs, sorted by
    /// parameter name so the export order is deterministic (the backing
    /// store is a hash map). This is the state `proteus-core::artifact`
    /// persists for warm starts.
    pub fn export_weights(&self) -> Vec<(String, Matrix)> {
        let mut out: Vec<(String, Matrix)> = self
            .store
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Reconstructs a generator from exported weights (the inverse of
    /// [`GraphRnn::export_weights`]): builds the `cfg`-shaped parameter
    /// skeleton, then overwrites every parameter with the imported matrix.
    ///
    /// # Errors
    /// Returns a description of the first mismatch when the imported set
    /// does not exactly cover the skeleton: a missing or unknown parameter
    /// name, a duplicate, or a matrix of the wrong shape.
    pub fn from_weights(
        cfg: GraphRnnConfig,
        weights: Vec<(String, Matrix)>,
    ) -> Result<GraphRnn, String> {
        // Seed value is irrelevant: every Xavier-initialized matrix is
        // overwritten below, and construction draws nothing else.
        let mut rnn = GraphRnn::new(cfg, 0);
        let expected = rnn.store.len();
        let mut imported = 0usize;
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (name, matrix) in &weights {
            if !seen.insert(name.as_str()) {
                return Err(format!("duplicate parameter `{name}`"));
            }
            let Some(current) = rnn.store.get(name) else {
                return Err(format!(
                    "unknown parameter `{name}` for this GraphRNN configuration"
                ));
            };
            if (current.rows(), current.cols()) != (matrix.rows(), matrix.cols()) {
                return Err(format!(
                    "parameter `{name}` has shape {}x{}, expected {}x{}",
                    matrix.rows(),
                    matrix.cols(),
                    current.rows(),
                    current.cols()
                ));
            }
            imported += 1;
        }
        if imported != expected {
            return Err(format!(
                "imported {imported} parameters, the configuration defines {expected}"
            ));
        }
        for (name, matrix) in weights {
            rnn.store.insert(name, matrix);
        }
        Ok(rnn)
    }

    fn row_to_input(&self, row: &[bool]) -> Matrix {
        let mut m = Matrix::zeros(1, self.cfg.m);
        for (k, &b) in row.iter().take(self.cfg.m).enumerate() {
            if b {
                m.set(0, k, 1.0);
            }
        }
        m
    }

    /// Teacher-forced negative log-likelihood of one sequence, recorded on
    /// `tape`; returns the loss variable.
    fn sequence_loss(&self, tape: &mut Tape, seq: &AdjSeq) -> Option<Var> {
        if seq.rows.is_empty() {
            return None;
        }
        let mut h = self.gru.zero_state(tape, 1);
        // SOS: all-ones input
        let mut x = tape.constant(Matrix::full(1, self.cfg.m, 1.0));
        let mut total: Option<Var> = None;
        for row in &seq.rows {
            h = self.gru.step(tape, &self.store, x, h);
            let e = self.mlp1.forward(tape, &self.store, h);
            let e = tape.relu(e);
            let logits = self.mlp2.forward(tape, &self.store, e);
            // mask: positions beyond the row's window are "no edge" targets
            // restricted to the valid window by zeroing both logits+targets
            let mut target = Matrix::zeros(1, self.cfg.m);
            for (k, &b) in row.iter().take(self.cfg.m).enumerate() {
                if b {
                    target.set(0, k, 1.0);
                }
            }
            let mut mask = Matrix::zeros(1, self.cfg.m);
            for k in 0..row.len().min(self.cfg.m) {
                mask.set(0, k, 1.0);
            }
            let mask_v = tape.constant(mask);
            let masked_logits = tape.mul(logits, mask_v);
            let t = tape.constant(target);
            let loss = tape.bce_with_logits(masked_logits, t);
            total = Some(match total {
                None => loss,
                Some(acc) => tape.add(acc, loss),
            });
            x = tape.constant(self.row_to_input(row));
        }
        total
    }

    /// Trains on a corpus of undirected topologies (BFS-augmented), and
    /// returns the per-epoch mean losses.
    pub fn train(&mut self, corpus: &[UGraph], seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adam = Adam::new(self.cfg.lr);
        let mut history = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut count = 0usize;
            for g in corpus {
                if g.len() < 2 {
                    continue;
                }
                let seq = encode(g, self.cfg.m, &mut rng);
                let mut tape = Tape::new();
                let Some(loss) = self.sequence_loss(&mut tape, &seq) else {
                    continue;
                };
                epoch_loss += tape.value(loss).get(0, 0);
                count += 1;
                let grads = tape.backward(loss);
                adam.step(&mut self.store, &grads);
            }
            history.push(if count == 0 {
                0.0
            } else {
                epoch_loss / count as f32
            });
        }
        history
    }

    /// Samples one topology. The result is the largest connected component
    /// of the raw sample (isolated fragments are rare but possible with a
    /// truncated lookback).
    pub fn sample(&self, rng: &mut StdRng) -> UGraph {
        let mut rows: Vec<Vec<bool>> = Vec::new();
        let mut tape = Tape::new();
        let mut h = self.gru.zero_state(&mut tape, 1);
        let mut x = tape.constant(Matrix::full(1, self.cfg.m, 1.0));
        for i in 1..self.cfg.max_nodes {
            h = self.gru.step(&mut tape, &self.store, x, h);
            let e = self.mlp1.forward(&mut tape, &self.store, h);
            let e = tape.relu(e);
            let logits = self.mlp2.forward(&mut tape, &self.store, e);
            let window = self.cfg.m.min(i);
            let lv = tape.value(logits).clone();
            let mut row = vec![false; window];
            for (k, slot) in row.iter_mut().enumerate() {
                let p = 1.0 / (1.0 + (-lv.get(0, k)).exp());
                *slot = rng.gen::<f32>() < p;
            }
            if row.iter().all(|&b| !b) {
                break; // EOS
            }
            x = tape.constant(self.row_to_input(&row));
            rows.push(row);
        }
        let seq = AdjSeq {
            m: self.cfg.m,
            rows,
        };
        seq.to_graph().largest_component()
    }

    /// Samples `count` topologies with at least `min_nodes` nodes each.
    /// Gives up on a candidate after a bounded number of rejections so the
    /// call always terminates.
    pub fn sample_many(&self, count: usize, min_nodes: usize, rng: &mut StdRng) -> Vec<UGraph> {
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 12 {
            attempts += 1;
            let g = self.sample(rng);
            if g.len() >= min_nodes {
                out.push(g);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<UGraph> {
        // chains with an occasional skip edge: resembles DL dataflow
        let mut corpus = Vec::new();
        for n in [6usize, 8, 10, 12] {
            let mut g = UGraph::new(n);
            for i in 1..n {
                g.add_edge(i - 1, i);
            }
            if n % 4 == 0 {
                g.add_edge(0, 3);
            }
            corpus.push(g);
        }
        corpus
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = GraphRnnConfig {
            epochs: 8,
            max_nodes: 20,
            ..Default::default()
        };
        let mut model = GraphRnn::new(cfg, 42);
        let history = model.train(&toy_corpus(), 7);
        assert!(history.len() == 8);
        let first = history.first().copied().unwrap();
        let last = history.last().copied().unwrap();
        assert!(
            last < first,
            "loss should decrease: {first} -> {last} ({history:?})"
        );
    }

    #[test]
    fn samples_are_valid_connected_graphs() {
        let cfg = GraphRnnConfig {
            epochs: 6,
            max_nodes: 24,
            ..Default::default()
        };
        let mut model = GraphRnn::new(cfg, 1);
        model.train(&toy_corpus(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = model.sample(&mut rng);
            assert!(g.len() <= 24);
            if g.len() >= 2 {
                // connected by construction (largest component)
                let adj = g.stats_adjacency();
                let comp = proteus_graph::stats::largest_component(&adj);
                assert_eq!(comp.len(), g.len());
            }
        }
    }

    #[test]
    fn sample_many_respects_min_size() {
        let cfg = GraphRnnConfig {
            epochs: 4,
            max_nodes: 24,
            ..Default::default()
        };
        let mut model = GraphRnn::new(cfg, 5);
        model.train(&toy_corpus(), 6);
        let mut rng = StdRng::seed_from_u64(8);
        let samples = model.sample_many(5, 4, &mut rng);
        assert!(samples.iter().all(|g| g.len() >= 4));
    }
}
