//! Orientation induction (paper Algorithm 3, Appendix A.1).
//!
//! GraphRNN generates *undirected* topologies, but computational graphs are
//! DAGs. `induce_orientation` finds the endpoints of a graph diameter,
//! records the BFS visit order from one endpoint, and orients every edge
//! from the earlier-visited node to the later-visited one. Orienting along
//! a single vertex ordering cannot create cycles, so the result is a DAG.

use crate::ugraph::{Dag, UGraph};
use proteus_graph::stats::{bfs_distances, diameter_endpoints};
use proteus_graph::NodeId;
use std::collections::VecDeque;

/// Orients an undirected topology into a DAG (Algorithm 3).
///
/// Ties in BFS order are broken by node index, making the result
/// deterministic.
pub fn induce_orientation(g: &UGraph) -> Dag {
    if g.is_empty() {
        return Dag::new(0, Vec::new());
    }
    let adj = g.stats_adjacency();
    let start = diameter_endpoints(&adj)
        .map(|(u, _)| u.index())
        .unwrap_or(0);
    // BFS visit order from the diameter endpoint
    let mut ord = vec![usize::MAX; g.len()];
    let mut next = 0usize;
    let mut q = VecDeque::new();
    q.push_back(start);
    ord[start] = next;
    next += 1;
    while let Some(u) = q.pop_front() {
        let mut neigh: Vec<usize> = g.neighbors(u).to_vec();
        neigh.sort_unstable();
        for v in neigh {
            if ord[v] == usize::MAX {
                ord[v] = next;
                next += 1;
                q.push_back(v);
            }
        }
    }
    // unreachable nodes (disconnected inputs) get trailing orders
    for o in ord.iter_mut() {
        if *o == usize::MAX {
            *o = next;
            next += 1;
        }
    }
    let mut edges = Vec::with_capacity(g.edge_count());
    for u in 0..g.len() {
        for &v in g.neighbors(u) {
            if u < v {
                if ord[u] < ord[v] {
                    edges.push((u, v));
                } else {
                    edges.push((v, u));
                }
            }
        }
    }
    edges.sort_unstable();
    Dag::new(g.len(), edges)
}

/// Distance (in hops) from `src` in the undirected topology; helper shared
/// with tests.
pub fn hops_from(g: &UGraph, src: usize) -> Vec<Option<usize>> {
    let adj = g.stats_adjacency();
    let dist = bfs_distances(&adj, NodeId::from_index(src));
    (0..g.len())
        .map(|i| dist.get(&NodeId::from_index(i)).copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn orientation_of_path_is_a_chain() {
        let mut g = UGraph::new(5);
        for i in 1..5 {
            g.add_edge(i - 1, i);
        }
        let dag = induce_orientation(&g);
        assert!(dag.is_acyclic());
        assert_eq!(dag.edges().len(), 4);
        // exactly one source and one sink
        let preds = dag.preds();
        let succs = dag.succs();
        assert_eq!(preds.iter().filter(|p| p.is_empty()).count(), 1);
        assert_eq!(succs.iter().filter(|s| s.is_empty()).count(), 1);
    }

    #[test]
    fn orientation_always_acyclic_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [4usize, 8, 16, 25] {
            for _ in 0..20 {
                let mut g = UGraph::new(n);
                for i in 1..n {
                    g.add_edge(i, rng.gen_range(0..i));
                }
                for _ in 0..n / 2 {
                    g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n));
                }
                let dag = induce_orientation(&g);
                assert!(dag.is_acyclic(), "n={n}");
                assert_eq!(dag.edges().len(), g.edge_count());
            }
        }
    }

    #[test]
    fn orientation_is_deterministic() {
        let mut g = UGraph::new(7);
        for i in 1..7 {
            g.add_edge(i - 1, i);
        }
        g.add_edge(0, 3);
        g.add_edge(2, 5);
        assert_eq!(induce_orientation(&g), induce_orientation(&g));
    }

    #[test]
    fn cycle_graph_becomes_diamond() {
        // 4-cycle: orientation must break the cycle
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let dag = induce_orientation(&g);
        assert!(dag.is_acyclic());
        assert_eq!(dag.edges().len(), 4);
    }
}
