//! Sentinels by minor modification of popular-model subgraphs
//! (paper §4.1.2, "Minor Modifications over Popular Models").
//!
//! When the protected model closely resembles a well-known architecture,
//! GraphRNN sentinels sampled from scratch would look *less* like the
//! protected subgraphs than the protected subgraphs look like the popular
//! model. In that regime Proteus instead perturbs the popular topology:
//! inserting and deleting nodes while preserving the opcodes of untouched
//! nodes.

use proteus_graph::{Activation, Graph, NodeId, Op};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shape-preserving unary operators safe to splice into any edge.
const SAFE_UNARY: [Op; 6] = [
    Op::Activation(Activation::Relu),
    Op::Activation(Activation::Sigmoid),
    Op::Activation(Activation::Tanh),
    Op::Activation(Activation::HardSigmoid),
    Op::Identity,
    Op::Dropout { p: 10 },
];

/// Configuration for the perturbation generator.
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Minimum number of insert/delete edits per sentinel.
    pub min_edits: usize,
    /// Maximum number of edits per sentinel.
    pub max_edits: usize,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig {
            min_edits: 1,
            max_edits: 4,
        }
    }
}

/// Produces a sentinel by applying `edits` random insertions/deletions to a
/// copy of `graph`. Unperturbed nodes keep their opcodes, as the paper
/// specifies. The result is always a valid graph.
pub fn perturb(graph: &Graph, cfg: PerturbConfig, rng: &mut StdRng) -> Graph {
    let mut g = graph.clone();
    let edits = rng.gen_range(cfg.min_edits..=cfg.max_edits.max(cfg.min_edits));
    for _ in 0..edits {
        // coin up: insert; coin down: delete, inserting only if nothing
        // was deletable
        let insert = rng.gen_bool(0.5);
        if insert || !delete_unary(&mut g, rng) {
            insert_unary(&mut g, rng);
        }
    }
    let (compacted, _) = g.compact();
    compacted
}

/// Inserts a random safe unary node on a random edge.
fn insert_unary(g: &mut Graph, rng: &mut StdRng) {
    let mut edges: Vec<(NodeId, usize)> = Vec::new();
    for (id, node) in g.iter() {
        for slot in 0..node.inputs.len() {
            edges.push((id, slot));
        }
    }
    let Some(&(dst, slot)) = edges.choose(rng) else {
        return;
    };
    let src = g.node(dst).expect("live").inputs[slot];
    let op = SAFE_UNARY[rng.gen_range(0..SAFE_UNARY.len())].clone();
    let mid = g.add(op, [src]);
    g.node_mut(dst).expect("live").inputs[slot] = mid;
}

/// Deletes a random removable unary node (reconnecting its consumers to its
/// input). Returns false when no such node exists.
fn delete_unary(g: &mut Graph, rng: &mut StdRng) -> bool {
    let candidates: Vec<NodeId> = g
        .iter()
        .filter(|(_, n)| n.op.is_elementwise_unary() && n.inputs.len() == 1)
        .map(|(id, _)| id)
        .collect();
    let Some(&victim) = candidates.choose(rng) else {
        return false;
    };
    let input = g.node(victim).expect("live").inputs[0];
    g.replace_uses(victim, input);
    g.remove(victim);
    true
}

/// Generates `count` perturbation sentinels from one protected subgraph.
pub fn perturb_many(
    graph: &Graph,
    cfg: PerturbConfig,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Graph> {
    (0..count).map(|_| perturb(graph, cfg, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::ConvAttrs;
    use rand::SeedableRng;

    fn base() -> Graph {
        let mut g = Graph::new("block");
        let x = g.input([1, 8, 16, 16]);
        let c = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [x]);
        let r = g.add(Op::Activation(Activation::Relu), [c]);
        let c2 = g.add(Op::Conv(ConvAttrs::new(8, 8, 3).padding(1)), [r]);
        let a = g.add(Op::Add, [c2, x]);
        let r2 = g.add(Op::Activation(Activation::Relu), [a]);
        g.set_outputs([r2]);
        g
    }

    #[test]
    fn perturbed_graphs_validate() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let p = perturb(&g, PerturbConfig::default(), &mut rng);
            p.validate().unwrap();
        }
    }

    #[test]
    fn perturbation_changes_structure_usually() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(1);
        let sentinels = perturb_many(
            &g,
            PerturbConfig {
                min_edits: 2,
                max_edits: 4,
            },
            20,
            &mut rng,
        );
        let changed = sentinels.iter().filter(|p| p.len() != g.len()).count();
        assert!(changed >= 10, "only {changed}/20 differ in node count");
    }

    #[test]
    fn conv_opcodes_preserved() {
        // deletions only touch unary elementwise ops; convs survive
        let g = base();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = perturb(&g, PerturbConfig::default(), &mut rng);
            let convs = p
                .iter()
                .filter(|(_, n)| matches!(n.op, Op::Conv(_)))
                .count();
            assert_eq!(convs, 2);
        }
    }

    #[test]
    fn inputs_never_removed() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = perturb(&g, PerturbConfig::default(), &mut rng);
            let inputs = p
                .iter()
                .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
                .count();
            assert_eq!(inputs, 1);
        }
    }
}
