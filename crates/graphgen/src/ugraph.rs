//! Undirected graph and DAG value types used by the topology generator.

use proteus_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A simple undirected graph over `0..n` (the GraphRNN sample space).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UGraph {
    adj: Vec<Vec<usize>>,
}

impl UGraph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> UGraph {
        UGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Adds an undirected edge (idempotent, ignores self-loops).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v || u >= self.len() || v >= self.len() {
            return;
        }
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// The raw adjacency lists, in their exact in-memory order.
    ///
    /// Neighbor order is an observable property of a topology: orientation
    /// induction and statistics walk the lists as stored, so persisting a
    /// trained pool (see `proteus-core::artifact`) must round-trip the
    /// lists verbatim — not as a canonicalized edge set.
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adj
    }

    /// Rebuilds a graph from raw adjacency lists, preserving neighbor
    /// order exactly (the inverse of [`UGraph::adjacency`]).
    ///
    /// # Errors
    /// Returns a description of the first violation when the lists do not
    /// form a simple undirected graph: an out-of-range endpoint, a
    /// self-loop, a duplicate neighbor, or an asymmetric edge.
    pub fn from_adjacency(adj: Vec<Vec<usize>>) -> Result<UGraph, String> {
        let n = adj.len();
        for (u, neigh) in adj.iter().enumerate() {
            let mut seen = std::collections::HashSet::with_capacity(neigh.len());
            for &v in neigh {
                if v >= n {
                    return Err(format!(
                        "node {u} lists out-of-range neighbor {v} (n = {n})"
                    ));
                }
                if v == u {
                    return Err(format!("node {u} lists a self-loop"));
                }
                if !seen.insert(v) {
                    return Err(format!("node {u} lists neighbor {v} twice"));
                }
                if !adj[v].contains(&u) {
                    return Err(format!("edge {u}-{v} is asymmetric: {v} does not list {u}"));
                }
            }
        }
        Ok(UGraph { adj })
    }

    /// Builds the undirected view of a computational graph, densely
    /// renumbering nodes.
    pub fn from_graph(g: &Graph) -> UGraph {
        let ids = g.node_ids();
        let index: HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut u = UGraph::new(ids.len());
        for (id, node) in g.iter() {
            for &inp in &node.inputs {
                u.add_edge(index[&inp], index[&id]);
            }
        }
        u
    }

    /// Adjacency in the [`proteus_graph::stats`] format so the shared
    /// statistics code applies.
    pub fn stats_adjacency(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut out = HashMap::with_capacity(self.len());
        for (u, neigh) in self.adj.iter().enumerate() {
            let mut v: Vec<NodeId> = neigh.iter().map(|&n| NodeId::from_index(n)).collect();
            v.sort();
            out.insert(NodeId::from_index(u), v);
        }
        out
    }

    /// Graph statistics of this topology.
    pub fn stats(&self) -> proteus_graph::GraphStats {
        proteus_graph::GraphStats::of_adjacency(&self.stats_adjacency())
    }

    /// Restricts to the largest connected component, renumbering nodes.
    pub fn largest_component(&self) -> UGraph {
        let adj = self.stats_adjacency();
        let comp = proteus_graph::stats::largest_component(&adj);
        let index: HashMap<usize, usize> = comp
            .iter()
            .enumerate()
            .map(|(i, id)| (id.index(), i))
            .collect();
        let mut out = UGraph::new(comp.len());
        for id in &comp {
            let u = id.index();
            for &v in &self.adj[u] {
                if let (Some(&iu), Some(&iv)) = (index.get(&u), index.get(&v)) {
                    out.add_edge(iu, iv);
                }
            }
        }
        out
    }
}

/// An unlabeled DAG over `0..n` — the output of orientation induction and
/// the input to operator population.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Dag {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Dag {
    /// Builds a DAG from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Dag {
        for &(u, v) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        }
        Dag { n, edges }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Directed edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Predecessor lists.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            p[v].push(u);
        }
        p
    }

    /// Successor lists.
    pub fn succs(&self) -> Vec<Vec<usize>> {
        let mut s = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            s[u].push(v);
        }
        s
    }

    /// True when the edge relation is acyclic.
    pub fn is_acyclic(&self) -> bool {
        let mut indeg = vec![0usize; self.n];
        for &(_, v) in &self.edges {
            indeg[v] += 1;
        }
        let succs = self.succs();
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = ready.pop() {
            seen += 1;
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(v);
                }
            }
        }
        seen == self.n
    }

    /// A topological order of the nodes.
    ///
    /// # Panics
    /// Panics if the DAG is cyclic (use [`Dag::is_acyclic`] first).
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.n];
        for &(_, v) in &self.edges {
            indeg[v] += 1;
        }
        let succs = self.succs();
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = ready.pop() {
            order.push(u);
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(v);
                }
            }
        }
        assert_eq!(order.len(), self.n, "Dag::topo_order on cyclic graph");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::{Activation, Op};

    #[test]
    fn ugraph_from_graph_counts() {
        let mut g = Graph::new("t");
        let x = g.input([1, 4]);
        let a = g.add(Op::Activation(Activation::Relu), [x]);
        let b = g.add(Op::Activation(Activation::Tanh), [x]);
        let c = g.add(Op::Add, [a, b]);
        g.set_outputs([c]);
        let u = UGraph::from_graph(&g);
        assert_eq!(u.len(), 4);
        assert_eq!(u.edge_count(), 4);
        let st = u.stats();
        assert_eq!(st.num_nodes, 4.0);
    }

    #[test]
    fn add_edge_dedups_and_ignores_self_loops() {
        let mut u = UGraph::new(3);
        u.add_edge(0, 1);
        u.add_edge(1, 0);
        u.add_edge(2, 2);
        assert_eq!(u.edge_count(), 1);
        assert_eq!(u.neighbors(2).len(), 0);
    }

    #[test]
    fn largest_component_extraction() {
        let mut u = UGraph::new(5);
        u.add_edge(0, 1);
        u.add_edge(1, 2);
        u.add_edge(3, 4);
        let c = u.largest_component();
        assert_eq!(c.len(), 3);
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn dag_acyclicity() {
        let d = Dag::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert!(d.is_acyclic());
        assert_eq!(d.topo_order(), vec![0, 1, 2]);
        let c = Dag::new(2, vec![(0, 1), (1, 0)]);
        assert!(!c.is_acyclic());
    }
}
