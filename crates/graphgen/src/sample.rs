//! Topology sampling (paper Algorithm 1: `SAMPLETOPOLOGIES`).
//!
//! Given a protected subgraph `G` and a pool `D` of GraphRNN-generated
//! topologies, draw sentinel topologies whose graph statistics are
//! *uniformly* distributed over a band around `G`'s statistics. Sampling
//! from `D` naively would follow `D`'s density and leave `G` at a
//! distinguishable mode; importance weights `1/p(x)` flatten the density so
//! that, observing the statistics alone, every bucket member is equally
//! likely to be the protected subgraph.

use crate::density::StatsDensity;
use crate::ugraph::UGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A pool of candidate topologies with precomputed statistics and a fitted
/// density estimate.
#[derive(Debug, Clone)]
pub struct TopologySampler {
    pool: Vec<(UGraph, [f64; 4])>,
    density: StatsDensity,
}

impl TopologySampler {
    /// Builds a sampler over a pool of generated topologies.
    pub fn new(pool: Vec<UGraph>) -> TopologySampler {
        let pool: Vec<(UGraph, [f64; 4])> = pool
            .into_iter()
            .map(|g| {
                let f = g.stats().to_vec();
                (g, f)
            })
            .collect();
        let features: Vec<[f64; 4]> = pool.iter().map(|(_, f)| *f).collect();
        let density = StatsDensity::fit(&features);
        TopologySampler { pool, density }
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// The fitted pool density.
    pub fn density(&self) -> &StatsDensity {
        &self.density
    }

    /// The pool topologies in sampling order. Rebuilding a sampler from
    /// this exact sequence ([`TopologySampler::new`] recomputes statistics
    /// and density deterministically) reproduces its draws bit for bit —
    /// the property the trained-state artifact relies on.
    pub fn topologies(&self) -> impl ExactSizeIterator<Item = &UGraph> {
        self.pool.iter().map(|(g, _)| g)
    }

    /// The topology at pool position `index` (sampling order), if any.
    /// Pool positions are the stable identity the warm sentinel inventory
    /// keys on: [`TopologySampler::sample_similar_indices`] draws
    /// positions, and a position resolves to the same topology for the
    /// lifetime of the trained state (and across artifact round trips —
    /// the pool is persisted order-exact).
    pub fn topology(&self, index: usize) -> Option<&UGraph> {
        self.pool.get(index).map(|(g, _)| g)
    }

    /// Algorithm 1: samples `count` topologies statistically similar to
    /// `protected`, with band width `beta` (in units of per-dimension pool
    /// standard deviations).
    ///
    /// The protected statistics sit at a *random position* inside the band
    /// (lines 4–8 of the paper's pseudocode), so the band's center leaks
    /// nothing. If too few pool members fall inside the band, the nearest
    /// candidates by normalized distance pad the result — obfuscation must
    /// always produce `count` sentinels.
    pub fn sample_similar(
        &self,
        protected: &UGraph,
        beta: f64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<UGraph> {
        self.sample_inner(protected, beta, count, rng, true)
            .into_iter()
            .map(|i| self.pool[i].0.clone())
            .collect()
    }

    /// [`TopologySampler::sample_similar`], but returning pool *positions*
    /// instead of cloned topologies. Consumes the randomness stream
    /// identically to `sample_similar`, so the two are interchangeable
    /// draw-for-draw; resolve a position with [`TopologySampler::topology`].
    pub fn sample_similar_indices(
        &self,
        protected: &UGraph,
        beta: f64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        self.sample_inner(protected, beta, count, rng, true)
    }

    /// Ablation: identical band, but *without* the importance correction —
    /// accepted samples follow the pool density instead of a uniform band.
    pub fn sample_naive(
        &self,
        protected: &UGraph,
        beta: f64,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<UGraph> {
        self.sample_inner(protected, beta, count, rng, false)
            .into_iter()
            .map(|i| self.pool[i].0.clone())
            .collect()
    }

    fn sample_inner(
        &self,
        protected: &UGraph,
        beta: f64,
        count: usize,
        rng: &mut StdRng,
        importance: bool,
    ) -> Vec<usize> {
        if self.pool.is_empty() || count == 0 {
            return Vec::new();
        }
        let x_g = protected.stats().to_vec();
        let stds = self.density.dim_stds();
        // band widths; degenerate dimensions get a small floor
        let width: Vec<f64> = stds.iter().map(|s| (beta * s).max(1e-3)).collect();
        // random position of G inside the band (paper lines 4-8)
        let mut lo = [0.0f64; 4];
        let mut hi = [0.0f64; 4];
        for d in 0..4 {
            let alpha = rng.gen_range(0.0..=width[d]);
            lo[d] = x_g[d] - alpha;
            hi[d] = lo[d] + width[d];
        }
        let in_band = |f: &[f64; 4]| (0..4).all(|d| f[d] >= lo[d] && f[d] <= hi[d]);

        // importance normalization: the minimum density inside the band
        let p_min = self
            .pool
            .iter()
            .filter(|(_, f)| in_band(f))
            .map(|(_, f)| self.density.density(f))
            .fold(f64::INFINITY, f64::min);

        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        let mut accepted = Vec::with_capacity(count);
        let mut passes = 0;
        while accepted.len() < count && passes < 64 {
            passes += 1;
            order.shuffle(rng);
            for &i in &order {
                if accepted.len() >= count {
                    break;
                }
                let (_, f) = &self.pool[i];
                if !in_band(f) {
                    continue;
                }
                let accept_prob = if importance {
                    let p = self.density.density(f);
                    if p_min.is_finite() && p > 0.0 {
                        (p_min / p).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                } else {
                    1.0
                };
                if rng.gen::<f64>() < accept_prob {
                    accepted.push(i);
                }
            }
        }
        // pad with nearest candidates in normalized feature space
        if accepted.len() < count {
            let mut by_dist: Vec<(f64, usize)> = self
                .pool
                .iter()
                .enumerate()
                .map(|(i, (_, f))| {
                    let d: f64 = (0..4)
                        .map(|k| {
                            let s = width[k].max(1e-9);
                            let dv = (f[k] - x_g[k]) / s;
                            dv * dv
                        })
                        .sum();
                    (d, i)
                })
                .collect();
            by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
            let mut cursor = 0;
            while accepted.len() < count {
                accepted.push(by_dist[cursor % by_dist.len()].1);
                cursor += 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool_of_chains() -> Vec<UGraph> {
        // chains of many sizes with some extra edges: a diverse pool
        let mut pool = Vec::new();
        for n in 4..28usize {
            let mut g = UGraph::new(n);
            for i in 1..n {
                g.add_edge(i - 1, i);
            }
            pool.push(g.clone());
            if n >= 6 {
                g.add_edge(0, n / 2);
                pool.push(g);
            }
        }
        pool
    }

    fn chain(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn sampled_topologies_resemble_protected() {
        let sampler = TopologySampler::new(pool_of_chains());
        let protected = chain(12);
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sampler.sample_similar(&protected, 2.0, 10, &mut rng);
        assert_eq!(samples.len(), 10);
        let target = protected.stats().num_nodes;
        for s in &samples {
            let n = s.stats().num_nodes;
            assert!(
                (n - target).abs() <= 14.0,
                "sampled size {n} too far from protected {target}"
            );
        }
    }

    #[test]
    fn always_returns_requested_count() {
        let sampler = TopologySampler::new(pool_of_chains());
        // absurdly tight band: padding must kick in
        let protected = chain(100);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sampler.sample_similar(&protected, 0.01, 7, &mut rng);
        assert_eq!(samples.len(), 7);
    }

    #[test]
    fn empty_pool_returns_empty() {
        let sampler = TopologySampler::new(Vec::new());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sampler
            .sample_similar(&chain(5), 1.0, 4, &mut rng)
            .is_empty());
    }

    #[test]
    fn importance_sampling_flattens_sizes() {
        // pool heavily skewed toward size 8; uniform-band sampling should
        // return a flatter size distribution than naive sampling
        let mut pool = Vec::new();
        for _ in 0..60 {
            pool.push(chain(8));
        }
        for n in [6usize, 7, 9, 10] {
            for _ in 0..6 {
                pool.push(chain(n));
            }
        }
        let sampler = TopologySampler::new(pool);
        let protected = chain(8);
        let mode_frac = |xs: &[UGraph]| {
            let m = xs.iter().filter(|g| g.len() == 8).count();
            m as f64 / xs.len() as f64
        };
        // The claim is statistical: a single draw can land a band that only
        // contains the mode size (both samplers then return identical
        // all-mode sets), so average over seeds. Seeding both samplers
        // identically makes them draw the same band per round.
        let rounds = 12;
        let (mut imp_sum, mut naive_sum) = (0.0, 0.0);
        for seed in 0..rounds {
            let mut rng = StdRng::seed_from_u64(seed);
            let imp = sampler.sample_similar(&protected, 3.0, 120, &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let naive = sampler.sample_naive(&protected, 3.0, 120, &mut rng);
            imp_sum += mode_frac(&imp);
            naive_sum += mode_frac(&naive);
        }
        assert!(
            imp_sum < naive_sum,
            "importance sampling should be flatter on average: \
             importance {:.3} vs naive {:.3}",
            imp_sum / rounds as f64,
            naive_sum / rounds as f64
        );
    }
}
