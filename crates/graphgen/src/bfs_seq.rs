//! BFS adjacency sequencing (the GraphRNN data representation).
//!
//! GraphRNN (You et al., 2018) represents an undirected graph as a sequence
//! of adjacency vectors under a BFS node ordering: node `i`'s vector records
//! its connections to the previous `M` nodes. BFS orderings bound the
//! lookback `M` needed to reconstruct the graph exactly.

use crate::ugraph::UGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// A BFS adjacency sequence: `seq[i]` is node `i+1`'s connectivity to the
/// previous `min(i+1, m)` nodes, most-recent first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjSeq {
    /// Lookback window.
    pub m: usize,
    /// Adjacency vectors (length `n - 1` for an `n`-node graph).
    pub rows: Vec<Vec<bool>>,
}

impl AdjSeq {
    /// Number of nodes in the encoded graph.
    pub fn num_nodes(&self) -> usize {
        self.rows.len() + 1
    }

    /// Decodes the sequence back into an undirected graph.
    pub fn to_graph(&self) -> UGraph {
        let n = self.num_nodes();
        let mut g = UGraph::new(n);
        for (i, row) in self.rows.iter().enumerate() {
            let node = i + 1;
            for (k, &connected) in row.iter().enumerate() {
                if connected {
                    // k = 0 is the immediately preceding node
                    let prev = node - 1 - k;
                    g.add_edge(node, prev);
                }
            }
        }
        g
    }
}

/// BFS order of `g` starting from `start`, with neighbor order shuffled by
/// `rng` (GraphRNN trains on random BFS orderings for data augmentation).
pub fn bfs_order(g: &UGraph, start: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut order = Vec::with_capacity(g.len());
    let mut seen = vec![false; g.len()];
    let mut q = VecDeque::new();
    q.push_back(start);
    seen[start] = true;
    while let Some(u) = q.pop_front() {
        order.push(u);
        let mut neigh: Vec<usize> = g.neighbors(u).to_vec();
        neigh.shuffle(rng);
        for v in neigh {
            if !seen[v] {
                seen[v] = true;
                q.push_back(v);
            }
        }
    }
    // disconnected remainders appended in index order (rare for our corpora)
    for (v, &visited) in seen.iter().enumerate() {
        if !visited {
            order.push(v);
        }
    }
    order
}

/// Encodes `g` as a BFS adjacency sequence with lookback `m`, using a random
/// start node and neighbor shuffling.
pub fn encode(g: &UGraph, m: usize, rng: &mut StdRng) -> AdjSeq {
    if g.is_empty() {
        return AdjSeq {
            m,
            rows: Vec::new(),
        };
    }
    let start = rng.gen_range(0..g.len());
    let order = bfs_order(g, start, rng);
    let mut pos = vec![0usize; g.len()];
    for (i, &u) in order.iter().enumerate() {
        pos[u] = i;
    }
    let mut rows = Vec::with_capacity(g.len().saturating_sub(1));
    for i in 1..order.len() {
        let node = order[i];
        let window = m.min(i);
        let mut row = vec![false; window];
        for &nb in g.neighbors(node) {
            let j = pos[nb];
            if j < i && i - j <= window {
                row[i - j - 1] = true;
            }
        }
        rows.push(row);
    }
    AdjSeq { m, rows }
}

/// The maximum BFS lookback actually needed to encode `g` exactly (the
/// largest `i - j` over edges under the given ordering).
pub fn required_lookback(g: &UGraph, order: &[usize]) -> usize {
    let mut pos = vec![0usize; g.len()];
    for (i, &u) in order.iter().enumerate() {
        pos[u] = i;
    }
    let mut max = 0;
    for u in 0..g.len() {
        for &v in g.neighbors(u) {
            let (a, b) = (pos[u], pos[v]);
            max = max.max(a.abs_diff(b));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn path(n: usize) -> UGraph {
        let mut g = UGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn encode_decode_roundtrip_path() {
        let g = path(8);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let seq = encode(&g, 8, &mut rng);
            let back = seq.to_graph();
            assert_eq!(back.len(), 8);
            assert_eq!(back.edge_count(), 7);
            // path has exactly two degree-1 endpoints
            let deg1 = (0..8).filter(|&u| back.neighbors(u).len() == 1).count();
            assert_eq!(deg1, 2);
        }
    }

    #[test]
    fn encode_decode_roundtrip_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [4usize, 7, 12] {
            let mut g = UGraph::new(n);
            for i in 1..n {
                g.add_edge(i, rng.gen_range(0..i)); // random connected tree
            }
            for _ in 0..n {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                g.add_edge(u, v);
            }
            let seq = encode(&g, n, &mut rng); // full lookback = exact
            let back = seq.to_graph();
            assert_eq!(back.edge_count(), g.edge_count());
            // degree multiset preserved
            let mut da: Vec<usize> = (0..n).map(|u| g.neighbors(u).len()).collect();
            let mut db: Vec<usize> = (0..n).map(|u| back.neighbors(u).len()).collect();
            da.sort_unstable();
            db.sort_unstable();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn bfs_order_visits_everything_once() {
        let g = path(10);
        let mut rng = StdRng::seed_from_u64(1);
        let order = bfs_order(&g, 5, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_bounds_lookback_on_path() {
        // On a path, BFS from an endpoint gives lookback 1; from the middle 2.
        let g = path(9);
        let mut rng = StdRng::seed_from_u64(2);
        let order = bfs_order(&g, 0, &mut rng);
        assert_eq!(required_lookback(&g, &order), 1);
    }

    #[test]
    fn truncated_lookback_drops_long_edges() {
        // star graph: center 0 connected to all; BFS from 0 has lookback up to n-1
        let mut g = UGraph::new(6);
        for i in 1..6 {
            g.add_edge(0, i);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let seq = encode(&g, 2, &mut rng);
        let back = seq.to_graph();
        assert!(back.edge_count() <= g.edge_count());
    }
}
