//! Diffusion-style U-Net builder.
//!
//! The U-Net's signature structure is its long-range skip connections:
//! every encoder level's activation is concatenated (channel axis) into
//! the matching decoder level, so the graph has `Concat` nodes whose
//! operands are separated by dozens of intermediate nodes. Upsampling is
//! expressed as a pixel-shuffle `Reshape` (numel-preserving channel→space
//! trade), and the bottleneck carries a spatial self-attention block —
//! both shapes absent from the paper-era zoo. Residual blocks use `Silu`
//! activations as in diffusion backbones.

use crate::blocks::{conv_bn, conv_bn_act};
use proteus_graph::{Activation, GemmAttrs, Graph, NodeId, Op, Shape};

/// A diffusion-style residual block: two 3x3 conv+norm stages with Silu,
/// closed by a residual add.
fn res_block(g: &mut Graph, x: NodeId, ch: usize) -> NodeId {
    let c1 = conv_bn_act(g, x, ch, ch, 3, 1, 1, Activation::Silu);
    let c2 = conv_bn(g, c1, ch, ch, 3, 1, 1);
    let add = g.add(Op::Add, [x, c2]);
    g.add(Op::Activation(Activation::Silu), [add])
}

/// Spatial self-attention at the bottleneck: flatten HxW into a sequence,
/// run single-head attention, reshape back.
fn spatial_attention(g: &mut Graph, x: NodeId, ch: usize, hw: usize) -> NodeId {
    let seq = g.add(
        Op::Reshape {
            shape: Shape::from([1, hw * hw, ch]),
        },
        [x],
    );
    let q = g.add(Op::Gemm(GemmAttrs::new(ch, ch)), [seq]);
    let k = g.add(Op::Gemm(GemmAttrs::new(ch, ch)), [seq]);
    let v = g.add(Op::Gemm(GemmAttrs::new(ch, ch)), [seq]);
    let kt = g.add(
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        [k],
    );
    let scores = g.add(Op::MatMul, [q, kt]);
    let scale = g.constant(Shape::new(vec![]));
    let scaled = g.add(Op::Div, [scores, scale]);
    let probs = g.add(Op::Softmax { axis: -1 }, [scaled]);
    let ctx = g.add(Op::MatMul, [probs, v]);
    let proj = g.add(Op::Gemm(GemmAttrs::new(ch, ch)), [ctx]);
    let back = g.add(
        Op::Reshape {
            shape: Shape::from([1, ch, hw, hw]),
        },
        [proj],
    );
    g.add(Op::Add, [x, back])
}

/// Pixel-shuffle upsampling: trade 4x channels for 2x spatial resolution
/// with a numel-preserving reshape.
fn pixel_shuffle(g: &mut Graph, x: NodeId, ch: usize, hw: usize) -> NodeId {
    g.add(
        Op::Reshape {
            shape: Shape::from([1, ch / 4, hw * 2, hw * 2]),
        },
        [x],
    )
}

/// Builds a diffusion-style U-Net over a `1 x in_ch x 32 x 32` latent.
pub fn unet(name: &str, in_ch: usize, base: usize) -> Graph {
    let mut g = Graph::new(name);
    let x = g.input([1, in_ch, 32, 32]);

    // Encoder: stem, then two stride-2 levels. Skip taps are the level
    // outputs *before* downsampling.
    let stem = conv_bn_act(&mut g, x, in_ch, base, 3, 1, 1, Activation::Silu);
    let enc1 = res_block(&mut g, stem, base); // [1, base, 32, 32]
    let down1 = conv_bn_act(&mut g, enc1, base, base * 2, 3, 2, 1, Activation::Silu);
    let enc2 = res_block(&mut g, down1, base * 2); // [1, 2b, 16, 16]
    let down2 = conv_bn_act(&mut g, enc2, base * 2, base * 4, 3, 2, 1, Activation::Silu);

    // Bottleneck at 8x8: residual block + spatial self-attention.
    let mid = res_block(&mut g, down2, base * 4);
    let mid = spatial_attention(&mut g, mid, base * 4, 8);
    let mid = res_block(&mut g, mid, base * 4);

    // Decoder: pixel-shuffle upsample, concat the skip, fuse, refine.
    let up1 = pixel_shuffle(&mut g, mid, base * 4, 8); // [1, b, 16, 16]
    let cat1 = g.add(Op::Concat { axis: 1 }, [up1, enc2]); // [1, 3b, 16, 16]
    let fuse1 = conv_bn_act(&mut g, cat1, base * 3, base * 2, 3, 1, 1, Activation::Silu);
    let dec1 = res_block(&mut g, fuse1, base * 2);

    let up2 = pixel_shuffle(&mut g, dec1, base * 2, 16); // [1, b/2, 32, 32]
    let cat2 = g.add(Op::Concat { axis: 1 }, [up2, enc1]); // [1, 3b/2, 32, 32]
    let fuse2 = conv_bn_act(&mut g, cat2, base * 3 / 2, base, 3, 1, 1, Activation::Silu);
    let dec2 = res_block(&mut g, fuse2, base);

    // Predicted noise has the latent's shape.
    let out = g.add(
        Op::Conv(proteus_graph::ConvAttrs::new(base, in_ch, 3).padding(1)),
        [dec2],
    );
    g.set_outputs([out]);
    g
}

/// The extended zoo's U-Net: a 4-channel latent with a 64-channel base
/// width, matching small latent-diffusion backbones.
pub fn diffusion_unet() -> Graph {
    unet("unet", 4, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn unet_validates_and_infers() {
        let g = diffusion_unet();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 4, 32, 32]);
    }

    #[test]
    fn skip_connections_concat_encoder_taps() {
        let g = diffusion_unet();
        let shapes = infer_shapes(&g).unwrap();
        let concat_dims: Vec<Vec<usize>> = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .map(|(id, _)| shapes[&id].dims().to_vec())
            .collect();
        assert_eq!(concat_dims.len(), 2, "one skip per decoder level");
        assert!(concat_dims.contains(&vec![1, 192, 16, 16]));
        assert!(concat_dims.contains(&vec![1, 96, 32, 32]));
    }

    #[test]
    fn upsampling_preserves_numel() {
        let g = diffusion_unet();
        let shapes = infer_shapes(&g).unwrap();
        for (id, n) in g.iter() {
            if let Op::Reshape { .. } = n.op {
                let out_numel: usize = shapes[&id].dims().iter().product();
                let in_numel: usize = shapes[&n.inputs[0]].dims().iter().product();
                assert_eq!(out_numel, in_numel);
            }
        }
    }
}
