//! Central model-zoo registry.
//!
//! Every parity/claims suite iterates this registry instead of hard-coding
//! model lists: [`all`] returns one entry per zoo model — the paper's 13
//! evaluation graphs plus the modern extensions (decoder, GNN, U-Net) —
//! each carrying its name, architecture family tag, and builder. A suite
//! that wants a subset filters by [`Family`] or uses [`paper`]/[`modern`];
//! a registry-count pin in each suite makes silently dropping a model a
//! test failure rather than a quiet coverage loss.

use crate::ModelKind;
use proteus_graph::Graph;

/// Coarse architecture family of a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Image CNNs (paper Figure 6 top block).
    ConvNet,
    /// Transformer encoders (paper Figure 6 bottom block).
    Encoder,
    /// KV-cached autoregressive decoders.
    Decoder,
    /// Message-passing graph networks.
    MessagePassing,
    /// Diffusion-style U-Nets with long skip connections.
    UNet,
}

impl Family {
    /// All families, in a stable order.
    pub const ALL: [Family; 5] = [
        Family::ConvNet,
        Family::Encoder,
        Family::Decoder,
        Family::MessagePassing,
        Family::UNet,
    ];

    /// A short lowercase tag for reports and JSON keys.
    pub fn tag(self) -> &'static str {
        match self {
            Family::ConvNet => "convnet",
            Family::Encoder => "encoder",
            Family::Decoder => "decoder",
            Family::MessagePassing => "gnn",
            Family::UNet => "unet",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One registry row: a zoo model with its name, family, and builder.
#[derive(Debug, Clone, Copy)]
pub struct ZooEntry {
    /// The model's kind (stable identifier).
    pub kind: ModelKind,
    /// The lowercase model name.
    pub name: &'static str,
    /// The model's architecture family.
    pub family: Family,
    /// Builds the model's graph.
    pub build: fn() -> Graph,
}

impl ZooEntry {
    fn of(kind: ModelKind) -> ZooEntry {
        ZooEntry {
            kind,
            name: kind.name(),
            family: kind.family(),
            build: kind.builder(),
        }
    }
}

/// Number of models in the full registry.
pub const COUNT: usize = ModelKind::ALL.len() + ModelKind::MODERN.len();

/// The full registry: the paper zoo followed by the modern extensions,
/// in a stable order.
pub fn all() -> Vec<ZooEntry> {
    ModelKind::ALL
        .iter()
        .chain(ModelKind::MODERN.iter())
        .map(|&k| ZooEntry::of(k))
        .collect()
}

/// The paper's 13 evaluation models (Figure 6).
pub fn paper() -> Vec<ZooEntry> {
    ModelKind::ALL.iter().map(|&k| ZooEntry::of(k)).collect()
}

/// The modern extensions: decoder, GNN, U-Net.
pub fn modern() -> Vec<ZooEntry> {
    ModelKind::MODERN.iter().map(|&k| ZooEntry::of(k)).collect()
}

/// Registry entries belonging to `family`.
pub fn by_family(family: Family) -> Vec<ZooEntry> {
    all().into_iter().filter(|e| e.family == family).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn registry_count_is_pinned() {
        assert_eq!(COUNT, 16, "zoo registry grew or shrank; update the pin");
        assert_eq!(all().len(), COUNT);
        assert_eq!(paper().len(), 13);
        assert_eq!(modern().len(), 3);
    }

    #[test]
    fn names_are_unique_and_match_kinds() {
        let entries = all();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNT, "duplicate registry names");
        for e in all() {
            assert_eq!(e.name, e.kind.name());
            assert_eq!((e.build)().name(), e.name, "builder/graph name mismatch");
        }
    }

    #[test]
    fn every_family_is_represented() {
        for f in Family::ALL {
            assert!(!by_family(f).is_empty(), "no registry entry for family {f}");
        }
    }

    #[test]
    fn builders_match_build() {
        for e in all() {
            let via_registry = (e.build)();
            let via_build = build(e.kind);
            assert_eq!(via_registry.len(), via_build.len());
        }
    }
}
