//! AlexNet builder (the small plain CNN in the paper's Hidet evaluation).

use proteus_graph::{Activation, ConvAttrs, GemmAttrs, Graph, Op, PoolAttrs};

/// AlexNet (torchvision layout).
pub fn alexnet() -> Graph {
    let mut g = Graph::new("alexnet");
    let x = g.input([1, 3, 224, 224]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(3, 64, 11).stride(4).padding(2)),
        [x],
    );
    let r1 = g.add(Op::Activation(Activation::Relu), [c1]);
    let p1 = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [r1]);
    let c2 = g.add(Op::Conv(ConvAttrs::new(64, 192, 5).padding(2)), [p1]);
    let r2 = g.add(Op::Activation(Activation::Relu), [c2]);
    let p2 = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [r2]);
    let c3 = g.add(Op::Conv(ConvAttrs::new(192, 384, 3).padding(1)), [p2]);
    let r3 = g.add(Op::Activation(Activation::Relu), [c3]);
    let c4 = g.add(Op::Conv(ConvAttrs::new(384, 256, 3).padding(1)), [r3]);
    let r4 = g.add(Op::Activation(Activation::Relu), [c4]);
    let c5 = g.add(Op::Conv(ConvAttrs::new(256, 256, 3).padding(1)), [r4]);
    let r5 = g.add(Op::Activation(Activation::Relu), [c5]);
    let p5 = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [r5]);
    let flat = g.add(Op::Flatten, [p5]);
    let d1 = g.add(Op::Dropout { p: 50 }, [flat]);
    let fc1 = g.add(Op::Gemm(GemmAttrs::new(256 * 6 * 6, 4096)), [d1]);
    let r6 = g.add(Op::Activation(Activation::Relu), [fc1]);
    let d2 = g.add(Op::Dropout { p: 50 }, [r6]);
    let fc2 = g.add(Op::Gemm(GemmAttrs::new(4096, 4096)), [d2]);
    let r7 = g.add(Op::Activation(Activation::Relu), [fc2]);
    let fc3 = g.add(Op::Gemm(GemmAttrs::new(4096, 1000)), [r7]);
    g.set_outputs([fc3]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn alexnet_validates() {
        let g = alexnet();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1000]);
    }

    #[test]
    fn alexnet_spatial_pipeline() {
        let g = alexnet();
        let shapes = infer_shapes(&g).unwrap();
        // final pool output is 256 x 6 x 6 like torchvision's
        let pool = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::MaxPool(_)))
            .map(|(id, _)| id)
            .max()
            .unwrap();
        assert_eq!(shapes[&pool].dims(), &[1, 256, 6, 6]);
    }
}
