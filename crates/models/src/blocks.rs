//! Shared building blocks for the CNN model builders.

use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, Graph, NodeId, Op};

/// Appends `Conv -> BatchNorm` and returns the BN node.
pub fn conv_bn(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> NodeId {
    let conv = g.add(
        Op::Conv(
            ConvAttrs::new(in_ch, out_ch, kernel)
                .stride(stride)
                .padding(padding)
                .bias(false),
        ),
        [x],
    );
    g.add(Op::BatchNorm(BatchNormAttrs { channels: out_ch }), [conv])
}

/// Appends `Conv -> BatchNorm -> act` and returns the activation node.
#[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter list
pub fn conv_bn_act(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> NodeId {
    let bn = conv_bn(g, x, in_ch, out_ch, kernel, stride, padding);
    g.add(Op::Activation(act), [bn])
}

/// Appends a grouped `Conv -> BatchNorm -> act`.
#[allow(clippy::too_many_arguments)]
pub fn grouped_conv_bn_act(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    groups: usize,
    act: Activation,
) -> NodeId {
    let conv = g.add(
        Op::Conv(
            ConvAttrs::new(in_ch, out_ch, kernel)
                .stride(stride)
                .padding(padding)
                .groups(groups)
                .bias(false),
        ),
        [x],
    );
    let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: out_ch }), [conv]);
    g.add(Op::Activation(act), [bn])
}

/// Appends a squeeze-and-excitation block (paper Figure 13) over `x` with
/// `channels` channels and reduction ratio `r`: GAP -> 1x1 Conv -> Relu ->
/// 1x1 Conv -> gate -> Mul. Returns the Mul node.
pub fn squeeze_excite(
    g: &mut Graph,
    x: NodeId,
    channels: usize,
    r: usize,
    gate: Activation,
) -> NodeId {
    let mid = (channels / r).max(1);
    let gap = g.add(Op::GlobalAveragePool, [x]);
    let fc1 = g.add(Op::Conv(ConvAttrs::new(channels, mid, 1)), [gap]);
    let relu = g.add(Op::Activation(Activation::Relu), [fc1]);
    let fc2 = g.add(Op::Conv(ConvAttrs::new(mid, channels, 1)), [relu]);
    let gated = g.add(Op::Activation(gate), [fc2]);
    g.add(Op::Mul, [x, gated])
}

/// Appends the classifier head `GAP -> Flatten -> Gemm` used by most CNNs.
pub fn classifier_head(g: &mut Graph, x: NodeId, channels: usize, classes: usize) -> NodeId {
    let gap = g.add(Op::GlobalAveragePool, [x]);
    let flat = g.add(Op::Flatten, [gap]);
    g.add(
        Op::Gemm(proteus_graph::GemmAttrs::new(channels, classes)),
        [flat],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn conv_bn_act_shapes() {
        let mut g = Graph::new("t");
        let x = g.input([1, 3, 32, 32]);
        let y = conv_bn_act(&mut g, x, 3, 16, 3, 2, 1, Activation::Relu);
        g.set_outputs([y]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&y].dims(), &[1, 16, 16, 16]);
    }

    #[test]
    fn squeeze_excite_preserves_shape() {
        let mut g = Graph::new("t");
        let x = g.input([1, 32, 8, 8]);
        let y = squeeze_excite(&mut g, x, 32, 4, Activation::Sigmoid);
        g.set_outputs([y]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&y].dims(), &[1, 32, 8, 8]);
    }

    #[test]
    fn classifier_head_shape() {
        let mut g = Graph::new("t");
        let x = g.input([1, 64, 7, 7]);
        let y = classifier_head(&mut g, x, 64, 1000);
        g.set_outputs([y]);
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&y].dims(), &[1, 1000]);
    }
}
