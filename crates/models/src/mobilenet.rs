//! MobileNetV2 and MNASNet builders (inverted-residual families).

use crate::blocks::{classifier_head, conv_bn, conv_bn_act, grouped_conv_bn_act};
use proteus_graph::{Activation, Graph, NodeId, Op};

/// An inverted residual block: 1x1 expand -> depthwise 3x3/5x5 -> 1x1
/// project, with a residual add when the shapes allow it.
fn inverted_residual(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    kernel: usize,
) -> NodeId {
    let mid = in_ch * expand;
    let mut h = x;
    if expand != 1 {
        h = conv_bn_act(g, h, in_ch, mid, 1, 1, 0, Activation::Relu6);
    }
    h = grouped_conv_bn_act(
        g,
        h,
        mid,
        mid,
        kernel,
        stride,
        kernel / 2,
        mid,
        Activation::Relu6,
    );
    h = conv_bn(g, h, mid, out_ch, 1, 1, 0);
    if stride == 1 && in_ch == out_ch {
        g.add(Op::Add, [h, x])
    } else {
        h
    }
}

/// MobileNetV2 (torchvision layout, width 1.0).
pub fn mobilenet_v2() -> Graph {
    let mut g = Graph::new("mobilenet");
    let x = g.input([1, 3, 224, 224]);
    let mut h = conv_bn_act(&mut g, x, 3, 32, 3, 2, 1, Activation::Relu6);
    // (expand, out_ch, repeats, stride)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32;
    for (expand, out_ch, repeats, stride) in cfg {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            h = inverted_residual(&mut g, h, in_ch, out_ch, s, expand, 3);
            in_ch = out_ch;
        }
    }
    h = conv_bn_act(&mut g, h, 320, 1280, 1, 1, 0, Activation::Relu6);
    let head = classifier_head(&mut g, h, 1280, 1000);
    g.set_outputs([head]);
    g
}

/// MNASNet-ish network: inverted residuals mixing 3x3 and 5x5 depthwise
/// kernels (the signature of the MNAS search space).
pub fn mnasnet() -> Graph {
    let mut g = Graph::new("mnasnet");
    let x = g.input([1, 3, 224, 224]);
    let mut h = conv_bn_act(&mut g, x, 3, 32, 3, 2, 1, Activation::Relu);
    // depthwise separable stem block
    h = grouped_conv_bn_act(&mut g, h, 32, 32, 3, 1, 1, 32, Activation::Relu);
    h = conv_bn(&mut g, h, 32, 16, 1, 1, 0);
    // (expand, out_ch, repeats, stride, kernel)
    let cfg: [(usize, usize, usize, usize, usize); 6] = [
        (3, 24, 3, 2, 3),
        (3, 40, 3, 2, 5),
        (6, 80, 3, 2, 5),
        (6, 96, 2, 1, 3),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut in_ch = 16;
    for (expand, out_ch, repeats, stride, kernel) in cfg {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            h = inverted_residual(&mut g, h, in_ch, out_ch, s, expand, kernel);
            in_ch = out_ch;
        }
    }
    h = conv_bn_act(&mut g, h, 320, 1280, 1, 1, 0, Activation::Relu);
    let head = classifier_head(&mut g, h, 1280, 1000);
    g.set_outputs([head]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn mobilenet_shapes_and_depthwise() {
        let g = mobilenet_v2();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1000]);
        let depthwise = g
            .iter()
            .filter(|(_, n)| matches!(&n.op, Op::Conv(c) if c.groups > 1))
            .count();
        assert_eq!(depthwise, 17, "one depthwise conv per inverted residual");
    }

    #[test]
    fn mnasnet_mixes_kernels() {
        let g = mnasnet();
        g.validate().unwrap();
        infer_shapes(&g).unwrap();
        let k5 = g
            .iter()
            .filter(|(_, n)| matches!(&n.op, Op::Conv(c) if c.kernel == 5))
            .count();
        assert!(k5 >= 5, "expected several 5x5 depthwise convs, got {k5}");
    }

    #[test]
    fn residual_adds_present() {
        let g = mobilenet_v2();
        let adds = g.iter().filter(|(_, n)| matches!(n.op, Op::Add)).count();
        assert_eq!(adds, 10, "mobilenetv2 has 10 residual connections");
    }
}
