//! DenseNet builder (concatenative dense blocks).

use crate::blocks::{classifier_head, conv_bn};
use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, Graph, NodeId, Op, PoolAttrs};

const GROWTH: usize = 32;

/// One dense layer: BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv,
/// concatenated onto the running feature map.
fn dense_layer(g: &mut Graph, x: NodeId, in_ch: usize) -> NodeId {
    let bn1 = g.add(Op::BatchNorm(BatchNormAttrs { channels: in_ch }), [x]);
    let r1 = g.add(Op::Activation(Activation::Relu), [bn1]);
    let c1 = g.add(
        Op::Conv(ConvAttrs::new(in_ch, 4 * GROWTH, 1).bias(false)),
        [r1],
    );
    let bn2 = g.add(
        Op::BatchNorm(BatchNormAttrs {
            channels: 4 * GROWTH,
        }),
        [c1],
    );
    let r2 = g.add(Op::Activation(Activation::Relu), [bn2]);
    let c2 = g.add(
        Op::Conv(ConvAttrs::new(4 * GROWTH, GROWTH, 3).padding(1).bias(false)),
        [r2],
    );
    g.add(Op::Concat { axis: 1 }, [x, c2])
}

/// Transition: BN -> ReLU -> 1x1 conv halving channels -> 2x2 avg pool.
fn transition(g: &mut Graph, x: NodeId, in_ch: usize) -> (NodeId, usize) {
    let out_ch = in_ch / 2;
    let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: in_ch }), [x]);
    let r = g.add(Op::Activation(Activation::Relu), [bn]);
    let c = g.add(Op::Conv(ConvAttrs::new(in_ch, out_ch, 1).bias(false)), [r]);
    let p = g.add(Op::AveragePool(PoolAttrs::new(2, 2, 0)), [c]);
    (p, out_ch)
}

/// A compact DenseNet (dense blocks of 4/6/8/6 layers, growth 32). Keeps the
/// characteristic Concat-heavy topology at a tractable node count.
pub fn densenet() -> Graph {
    let mut g = Graph::new("densenet");
    let x = g.input([1, 3, 224, 224]);
    let stem = conv_bn(&mut g, x, 3, 64, 7, 2, 3);
    let stem = g.add(Op::Activation(Activation::Relu), [stem]);
    let mut h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [stem]);
    let mut ch = 64;
    for (i, layers) in [4usize, 6, 8, 6].into_iter().enumerate() {
        for _ in 0..layers {
            h = dense_layer(&mut g, h, ch);
            ch += GROWTH;
        }
        if i != 3 {
            let (t, new_ch) = transition(&mut g, h, ch);
            h = t;
            ch = new_ch;
        }
    }
    let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: ch }), [h]);
    let relu = g.add(Op::Activation(Activation::Relu), [bn]);
    let head = classifier_head(&mut g, relu, ch, 1000);
    g.set_outputs([head]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn densenet_validates() {
        let g = densenet();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1000]);
    }

    #[test]
    fn densenet_is_concat_heavy() {
        let g = densenet();
        let concats = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .count();
        assert_eq!(concats, 24, "one concat per dense layer");
    }

    #[test]
    fn channel_growth_matches() {
        // after block 1 (4 layers from 64): 192 -> transition 96
        // block 2 (6): 96+192=288 -> 144; block 3 (8): 144+256=400 -> 200;
        // block 4 (6): 200+192=392 final channels
        let g = densenet();
        let shapes = infer_shapes(&g).unwrap();
        let gap = g
            .iter()
            .find(|(_, n)| matches!(n.op, Op::GlobalAveragePool))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(shapes[&gap].dims()[1], 392);
    }
}
