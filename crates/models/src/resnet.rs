//! ResNet-18, ResNeXt-ish, and SEResNet builders.

use crate::blocks::{classifier_head, conv_bn, conv_bn_act, grouped_conv_bn_act, squeeze_excite};
use proteus_graph::{Activation, Graph, NodeId, Op, PoolAttrs};

/// A basic residual block: two 3x3 conv-bn with a skip connection.
fn basic_block(g: &mut Graph, x: NodeId, in_ch: usize, out_ch: usize, stride: usize) -> NodeId {
    let main = conv_bn_act(g, x, in_ch, out_ch, 3, stride, 1, Activation::Relu);
    let main = conv_bn(g, main, out_ch, out_ch, 3, 1, 1);
    let skip = if stride != 1 || in_ch != out_ch {
        conv_bn(g, x, in_ch, out_ch, 1, stride, 0)
    } else {
        x
    };
    let add = g.add(Op::Add, [main, skip]);
    g.add(Op::Activation(Activation::Relu), [add])
}

fn stem(g: &mut Graph) -> NodeId {
    let x = g.input([1, 3, 224, 224]);
    let c = conv_bn_act(g, x, 3, 64, 7, 2, 3, Activation::Relu);
    g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [c])
}

/// ResNet-18 (torchvision layout: stages 64/128/256/512, 2 blocks each).
pub fn resnet18() -> Graph {
    let mut g = Graph::new("resnet");
    let mut x = stem(&mut g);
    let mut in_ch = 64;
    for (stage, &ch) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(&mut g, x, in_ch, ch, stride);
            in_ch = ch;
        }
    }
    let head = classifier_head(&mut g, x, 512, 1000);
    g.set_outputs([head]);
    g
}

/// A ResNeXt-style bottleneck block with grouped 3x3 convolutions.
fn resnext_block(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    groups: usize,
) -> NodeId {
    let width = out_ch / 2;
    let a = conv_bn_act(g, x, in_ch, width, 1, 1, 0, Activation::Relu);
    let b = grouped_conv_bn_act(g, a, width, width, 3, stride, 1, groups, Activation::Relu);
    let c = conv_bn(g, b, width, out_ch, 1, 1, 0);
    let skip = if stride != 1 || in_ch != out_ch {
        conv_bn(g, x, in_ch, out_ch, 1, stride, 0)
    } else {
        x
    };
    let add = g.add(Op::Add, [c, skip]);
    g.add(Op::Activation(Activation::Relu), [add])
}

/// ResNeXt-ish network (grouped bottlenecks, cardinality 32).
pub fn resnext() -> Graph {
    let mut g = Graph::new("resnext");
    let mut x = stem(&mut g);
    let mut in_ch = 64;
    for (stage, &ch) in [256usize, 512, 1024].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = resnext_block(&mut g, x, in_ch, ch, stride, 32);
            in_ch = ch;
        }
    }
    let head = classifier_head(&mut g, x, 1024, 1000);
    g.set_outputs([head]);
    g
}

/// A SEResNet basic block: basic residual block with a squeeze-excite gate
/// on the main branch (paper §6.2, Figure 13 uses HardSigmoid gates).
fn se_block(g: &mut Graph, x: NodeId, in_ch: usize, out_ch: usize, stride: usize) -> NodeId {
    let main = conv_bn_act(g, x, in_ch, out_ch, 3, stride, 1, Activation::Relu);
    let main = conv_bn(g, main, out_ch, out_ch, 3, 1, 1);
    let main = squeeze_excite(g, main, out_ch, 16, Activation::Sigmoid);
    let skip = if stride != 1 || in_ch != out_ch {
        conv_bn(g, x, in_ch, out_ch, 1, stride, 0)
    } else {
        x
    };
    let add = g.add(Op::Add, [main, skip]);
    g.add(Op::Activation(Activation::Relu), [add])
}

/// SEResNet: ResNet-18 skeleton with squeeze-excitation blocks. The paper's
/// second case study (§6.2) protects exactly this kind of "ResNet plus SE"
/// variant.
pub fn seresnet() -> Graph {
    let mut g = Graph::new("seresnet");
    let mut x = stem(&mut g);
    let mut in_ch = 64;
    for (stage, &ch) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = se_block(&mut g, x, in_ch, ch, stride);
            in_ch = ch;
        }
    }
    let head = classifier_head(&mut g, x, 512, 1000);
    g.set_outputs([head]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn resnet18_structure() {
        let g = resnet18();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        let out = g.outputs()[0];
        assert_eq!(shapes[&out].dims(), &[1, 1000]);
        // 8 residual adds
        let adds = g.iter().filter(|(_, n)| matches!(n.op, Op::Add)).count();
        assert_eq!(adds, 8);
    }

    #[test]
    fn resnext_uses_groups() {
        let g = resnext();
        g.validate().unwrap();
        infer_shapes(&g).unwrap();
        let grouped = g
            .iter()
            .filter(|(_, n)| matches!(&n.op, Op::Conv(c) if c.groups == 32))
            .count();
        assert_eq!(grouped, 6);
    }

    #[test]
    fn seresnet_has_se_gates() {
        let g = seresnet();
        g.validate().unwrap();
        infer_shapes(&g).unwrap();
        let muls = g.iter().filter(|(_, n)| matches!(n.op, Op::Mul)).count();
        assert_eq!(muls, 8, "one SE gate per block");
        assert!(g.len() > resnet18().len());
    }
}
