//! Decoder-style transformer builders with KV-cache-like graph structure.
//!
//! Modern serving workloads run autoregressive decoders one token at a
//! time: each layer projects the new token to query/key/value, *appends*
//! the new key/value to a cached prefix, and attends over the full
//! concatenated sequence. The graph shape is therefore visibly different
//! from the encoder builders in [`crate::transformer`]: a seq-len-1
//! activation stream, per-layer `Concat` nodes splicing cache tensors into
//! the attention operands, pre-LayerNorm residual placement, and a gated
//! (SwiGLU-style) feed-forward with an elementwise `Mul`. These are the
//! structures a structural adversary could key on, which is why the
//! extended-zoo claims battery includes them.

use proteus_graph::{Activation, GemmAttrs, Graph, LayerNormAttrs, NodeId, Op, Shape};

/// Configuration of a KV-cached decoder stack.
#[derive(Debug, Clone, Copy)]
pub struct DecoderConfig {
    /// Vocabulary size of the embedding and the logit head.
    pub vocab: usize,
    /// Residual-stream width.
    pub hidden: usize,
    /// Number of decoder layers.
    pub layers: usize,
    /// Cached prefix length the new token attends over.
    pub past_len: usize,
    /// Feed-forward expansion factor (gate and up projections).
    pub ffn_mult: usize,
}

/// One cached-attention block: project the token, splice the new key/value
/// onto the cached prefix, attend over `past_len + 1` positions.
fn cached_attention(g: &mut Graph, x: NodeId, cfg: &DecoderConfig) -> NodeId {
    let h = cfg.hidden;
    let q = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    let k_new = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    let v_new = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    // The cache tensors are session state: weights-store entries shaped
    // like the decoded prefix.
    let k_cache = g.constant([1, cfg.past_len, h]);
    let v_cache = g.constant([1, cfg.past_len, h]);
    let k = g.add(Op::Concat { axis: 1 }, [k_cache, k_new]);
    let v = g.add(Op::Concat { axis: 1 }, [v_cache, v_new]);
    let kt = g.add(
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        [k],
    );
    let scores = g.add(Op::MatMul, [q, kt]);
    let scale = g.constant(Shape::new(vec![]));
    let scaled = g.add(Op::Div, [scores, scale]);
    let probs = g.add(Op::Softmax { axis: -1 }, [scaled]);
    let ctx = g.add(Op::MatMul, [probs, v]);
    g.add(Op::Gemm(GemmAttrs::new(h, h)), [ctx])
}

/// SwiGLU-style feed-forward: `down(silu(gate(x)) * up(x))`.
fn gated_ffn(g: &mut Graph, x: NodeId, cfg: &DecoderConfig) -> NodeId {
    let h = cfg.hidden;
    let inner = h * cfg.ffn_mult;
    let gate = g.add(Op::Gemm(GemmAttrs::new(h, inner)), [x]);
    let act = g.add(Op::Activation(Activation::Silu), [gate]);
    let up = g.add(Op::Gemm(GemmAttrs::new(h, inner)), [x]);
    let gated = g.add(Op::Mul, [act, up]);
    g.add(Op::Gemm(GemmAttrs::new(inner, h)), [gated])
}

/// One pre-LN decoder layer over the residual stream.
fn decoder_layer(g: &mut Graph, x: NodeId, cfg: &DecoderConfig) -> NodeId {
    let ln1 = g.add(Op::LayerNorm(LayerNormAttrs { dim: cfg.hidden }), [x]);
    let att = cached_attention(g, ln1, cfg);
    let res1 = g.add(Op::Add, [x, att]);
    let ln2 = g.add(Op::LayerNorm(LayerNormAttrs { dim: cfg.hidden }), [res1]);
    let ff = gated_ffn(g, ln2, cfg);
    g.add(Op::Add, [res1, ff])
}

/// Builds a single decode step of a KV-cached decoder from a configuration.
pub fn decoder(name: &str, cfg: DecoderConfig) -> Graph {
    let mut g = Graph::new(name);
    let ids = g.input([1, 1]);
    let emb = g.add(
        Op::Gather {
            vocab: cfg.vocab,
            dim: cfg.hidden,
        },
        [ids],
    );
    let mut h = emb;
    for _ in 0..cfg.layers {
        h = decoder_layer(&mut g, h, &cfg);
    }
    let ln_f = g.add(Op::LayerNorm(LayerNormAttrs { dim: cfg.hidden }), [h]);
    let logits = g.add(Op::Gemm(GemmAttrs::new(cfg.hidden, cfg.vocab)), [ln_f]);
    g.set_outputs([logits]);
    g
}

/// The extended zoo's decoder: 16 layers, hidden 512, a 48-token cached
/// prefix — deeper than any encoder in the paper zoo, with the KV-cache
/// concat structure on every layer.
pub fn gpt_decoder() -> Graph {
    decoder(
        "gpt-decoder",
        DecoderConfig {
            vocab: 32000,
            hidden: 512,
            layers: 16,
            past_len: 48,
            ffn_mult: 4,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn decoder_validates_and_infers() {
        let g = gpt_decoder();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1, 32000]);
    }

    #[test]
    fn every_layer_splices_the_cache() {
        let g = gpt_decoder();
        let concats = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .count();
        assert_eq!(concats, 32, "two cache concats (K and V) per layer");
    }

    #[test]
    fn attention_width_covers_the_cached_prefix() {
        let g = gpt_decoder();
        let shapes = infer_shapes(&g).unwrap();
        let softmax_widths: Vec<usize> = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Softmax { .. }))
            .map(|(id, _)| *shapes[&id].dims().last().unwrap())
            .collect();
        assert_eq!(softmax_widths.len(), 16);
        assert!(
            softmax_widths.iter().all(|&w| w == 49),
            "past + 1 positions"
        );
    }

    #[test]
    fn gated_ffn_uses_elementwise_mul() {
        let g = gpt_decoder();
        let muls = g.iter().filter(|(_, n)| matches!(n.op, Op::Mul)).count();
        assert_eq!(muls, 16, "one SwiGLU gate per layer");
    }
}
