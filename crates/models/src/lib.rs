//! Programmatic model zoo.
//!
//! The Proteus paper evaluates on torchvision CNNs and HuggingFace
//! transformer encoders (paper §5.1, Figure 6) plus NATS-Bench cells for the
//! NAS case study (§6.1). This crate rebuilds those architectures as
//! [`proteus_graph::Graph`]s with realistic operator sequences, shapes, and
//! block structure — the information the optimizer, partitioner, sentinel
//! generator, and adversary consume.
//!
//! # Example
//!
//! ```
//! use proteus_models::{build, ModelKind};
//! let g = build(ModelKind::ResNet);
//! assert!(g.len() > 50);
//! assert!(proteus_graph::infer_shapes(&g).is_ok());
//! ```

pub mod alexnet;
pub mod blocks;
pub mod decoder;
pub mod densenet;
pub mod gnn;
pub mod inception;
pub mod mobilenet;
pub mod nats;
pub mod resnet;
pub mod transformer;
pub mod unet;
pub mod zoo;

use proteus_graph::Graph;
pub use zoo::Family;

/// The models used throughout the paper's evaluation, plus the modern
/// extensions (decoder / GNN / U-Net) added for the scenario-diversity
/// battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    AlexNet,
    MobileNet,
    ResNet,
    DenseNet,
    GoogleNet,
    ResNeXt,
    Inception,
    MnasNet,
    SEResNet,
    Bert,
    Roberta,
    DistilBert,
    Xlm,
    GptDecoder,
    GraphSage,
    UNet,
}

impl ModelKind {
    /// The paper's evaluation models (Figure 6), in a stable order. The
    /// modern extensions live in [`ModelKind::MODERN`]; the union is
    /// [`zoo::all`].
    pub const ALL: [ModelKind; 13] = [
        ModelKind::AlexNet,
        ModelKind::MobileNet,
        ModelKind::ResNet,
        ModelKind::DenseNet,
        ModelKind::GoogleNet,
        ModelKind::ResNeXt,
        ModelKind::Inception,
        ModelKind::MnasNet,
        ModelKind::SEResNet,
        ModelKind::Bert,
        ModelKind::Roberta,
        ModelKind::DistilBert,
        ModelKind::Xlm,
    ];

    /// The modern architecture families added beyond the paper's tables.
    pub const MODERN: [ModelKind; 3] =
        [ModelKind::GptDecoder, ModelKind::GraphSage, ModelKind::UNet];

    /// The lowercase name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::AlexNet => "alexnet",
            ModelKind::MobileNet => "mobilenet",
            ModelKind::ResNet => "resnet",
            ModelKind::DenseNet => "densenet",
            ModelKind::GoogleNet => "googlenet",
            ModelKind::ResNeXt => "resnext",
            ModelKind::Inception => "inception",
            ModelKind::MnasNet => "mnasnet",
            ModelKind::SEResNet => "seresnet",
            ModelKind::Bert => "bert",
            ModelKind::Roberta => "roberta",
            ModelKind::DistilBert => "distilbert",
            ModelKind::Xlm => "xlm",
            ModelKind::GptDecoder => "gpt-decoder",
            ModelKind::GraphSage => "graphsage",
            ModelKind::UNet => "unet",
        }
    }

    /// True for the transformer (language) models, encoder or decoder.
    pub fn is_language(self) -> bool {
        matches!(
            self,
            ModelKind::Bert
                | ModelKind::Roberta
                | ModelKind::DistilBert
                | ModelKind::Xlm
                | ModelKind::GptDecoder
        )
    }

    /// The model's architecture family.
    pub fn family(self) -> Family {
        match self {
            ModelKind::AlexNet
            | ModelKind::MobileNet
            | ModelKind::ResNet
            | ModelKind::DenseNet
            | ModelKind::GoogleNet
            | ModelKind::ResNeXt
            | ModelKind::Inception
            | ModelKind::MnasNet
            | ModelKind::SEResNet => Family::ConvNet,
            ModelKind::Bert | ModelKind::Roberta | ModelKind::DistilBert | ModelKind::Xlm => {
                Family::Encoder
            }
            ModelKind::GptDecoder => Family::Decoder,
            ModelKind::GraphSage => Family::MessagePassing,
            ModelKind::UNet => Family::UNet,
        }
    }

    /// The model's graph builder as a plain function pointer.
    pub fn builder(self) -> fn() -> Graph {
        match self {
            ModelKind::AlexNet => alexnet::alexnet,
            ModelKind::MobileNet => mobilenet::mobilenet_v2,
            ModelKind::ResNet => resnet::resnet18,
            ModelKind::DenseNet => densenet::densenet,
            ModelKind::GoogleNet => inception::googlenet,
            ModelKind::ResNeXt => resnet::resnext,
            ModelKind::Inception => inception::inception_v3,
            ModelKind::MnasNet => mobilenet::mnasnet,
            ModelKind::SEResNet => resnet::seresnet,
            ModelKind::Bert => transformer::bert,
            ModelKind::Roberta => transformer::roberta,
            ModelKind::DistilBert => transformer::distilbert,
            ModelKind::Xlm => transformer::xlm,
            ModelKind::GptDecoder => decoder::gpt_decoder,
            ModelKind::GraphSage => gnn::graph_sage,
            ModelKind::UNet => unet::diffusion_unet,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the computational graph of a zoo model.
pub fn build(kind: ModelKind) -> Graph {
    (kind.builder())()
}

/// Builds the paper zoo (excluding NAS samples and the modern extensions;
/// see [`zoo::all`] for the full registry).
pub fn zoo() -> Vec<(ModelKind, Graph)> {
    ModelKind::ALL.iter().map(|&k| (k, build(k))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn every_model_validates_and_infers_shapes() {
        for e in zoo::all() {
            let g = (e.build)();
            g.validate()
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            infer_shapes(&g).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        }
    }

    #[test]
    fn models_have_realistic_sizes() {
        for e in zoo::all() {
            let n = (e.build)().len();
            assert!(
                (18..=420).contains(&n),
                "{} has unexpected node count {n}",
                e.name
            );
        }
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(ModelKind::ResNet.name(), "resnet");
        assert_eq!(ModelKind::Xlm.name(), "xlm");
        assert_eq!(ModelKind::ALL.len(), 13);
        assert_eq!(ModelKind::MODERN.len(), 3);
    }

    #[test]
    fn language_models_flagged() {
        assert!(ModelKind::Bert.is_language());
        assert!(ModelKind::GptDecoder.is_language());
        assert!(!ModelKind::ResNet.is_language());
        assert!(!ModelKind::GraphSage.is_language());
    }
}
