//! Message-passing GNN builders.
//!
//! A graph neural network's computational graph has a distinctive shape:
//! layers alternate a *neighbour aggregation* (a `MatMul` against a fixed
//! normalized-adjacency operand) with a *combine* step (concatenate the
//! node's own state with the aggregated neighbourhood, then project), and
//! the whole stack is read out with a global mean over the node axis.
//! None of the paper-era CNNs or encoders contain `MatMul` nodes whose
//! left operand is a constant, which makes this family a useful probe for
//! a structural adversary.

use proteus_graph::{Activation, GemmAttrs, Graph, LayerNormAttrs, NodeId, Op};

/// Configuration of a SAGE-style message-passing stack.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    /// Number of graph nodes in the operand shapes.
    pub nodes: usize,
    /// Input feature width per node.
    pub in_feat: usize,
    /// Hidden feature width per node.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Output classes of the readout head.
    pub classes: usize,
}

/// One message-passing layer: aggregate neighbours through the adjacency
/// operand, concatenate with the node's own state, project, normalize.
fn sage_layer(
    g: &mut Graph,
    h: NodeId,
    adj: NodeId,
    in_feat: usize,
    out_feat: usize,
    residual: bool,
) -> NodeId {
    let neigh = g.add(Op::MatMul, [adj, h]);
    let cat = g.add(Op::Concat { axis: 1 }, [h, neigh]);
    let proj = g.add(Op::Gemm(GemmAttrs::new(2 * in_feat, out_feat)), [cat]);
    let norm = g.add(Op::LayerNorm(LayerNormAttrs { dim: out_feat }), [proj]);
    let act = g.add(Op::Activation(Activation::Relu), [norm]);
    if residual && in_feat == out_feat {
        g.add(Op::Add, [h, act])
    } else {
        act
    }
}

/// Builds a message-passing GNN from a configuration.
pub fn gnn(name: &str, cfg: GnnConfig) -> Graph {
    let mut g = Graph::new(name);
    let x = g.input([cfg.nodes, cfg.in_feat]);
    // Row-normalized adjacency, shipped with the weights like any other
    // constant operand.
    let adj = g.constant([cfg.nodes, cfg.nodes]);
    let mut h = sage_layer(&mut g, x, adj, cfg.in_feat, cfg.hidden, false);
    for _ in 1..cfg.layers {
        h = sage_layer(&mut g, h, adj, cfg.hidden, cfg.hidden, true);
    }
    // Global mean readout over the node axis, then a linear head.
    let pooled = g.add(
        Op::ReduceMean {
            axes: vec![0],
            keepdims: true,
        },
        [h],
    );
    let logits = g.add(Op::Gemm(GemmAttrs::new(cfg.hidden, cfg.classes)), [pooled]);
    g.set_outputs([logits]);
    g
}

/// The extended zoo's GNN: 8 SAGE-style layers over a 64-node graph.
pub fn graph_sage() -> Graph {
    gnn(
        "graphsage",
        GnnConfig {
            nodes: 64,
            in_feat: 64,
            hidden: 96,
            layers: 8,
            classes: 16,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn gnn_validates_and_infers() {
        let g = graph_sage();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 16]);
    }

    #[test]
    fn every_layer_aggregates_through_the_adjacency() {
        let g = graph_sage();
        let matmuls = g.iter().filter(|(_, n)| matches!(n.op, Op::MatMul)).count();
        assert_eq!(matmuls, 8, "one adjacency MatMul per layer");
        let concats = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .count();
        assert_eq!(concats, 8, "one self/neighbour combine per layer");
    }

    #[test]
    fn readout_pools_the_node_axis() {
        let g = graph_sage();
        let shapes = infer_shapes(&g).unwrap();
        let pooled = g
            .iter()
            .find(|(_, n)| matches!(n.op, Op::ReduceMean { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(shapes[&pooled].dims(), &[1, 96]);
    }
}
