//! GoogLeNet and a compact Inception-v3-style builder.

use crate::blocks::{classifier_head, conv_bn_act};
use proteus_graph::{Activation, Graph, NodeId, Op, PoolAttrs};

/// The classic GoogLeNet inception module with four parallel branches
/// joined by a channel concat.
#[allow(clippy::too_many_arguments)]
fn inception_module(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    b1: usize,
    b2_red: usize,
    b2: usize,
    b3_red: usize,
    b3: usize,
    b4: usize,
) -> (NodeId, usize) {
    let br1 = conv_bn_act(g, x, in_ch, b1, 1, 1, 0, Activation::Relu);
    let br2 = conv_bn_act(g, x, in_ch, b2_red, 1, 1, 0, Activation::Relu);
    let br2 = conv_bn_act(g, br2, b2_red, b2, 3, 1, 1, Activation::Relu);
    let br3 = conv_bn_act(g, x, in_ch, b3_red, 1, 1, 0, Activation::Relu);
    let br3 = conv_bn_act(g, br3, b3_red, b3, 5, 1, 2, Activation::Relu);
    let br4 = g.add(Op::MaxPool(PoolAttrs::new(3, 1, 1)), [x]);
    let br4 = conv_bn_act(g, br4, in_ch, b4, 1, 1, 0, Activation::Relu);
    let cat = g.add(Op::Concat { axis: 1 }, [br1, br2, br3, br4]);
    (cat, b1 + b2 + b3 + b4)
}

/// GoogLeNet (Inception v1) with its nine inception modules.
pub fn googlenet() -> Graph {
    let mut g = Graph::new("googlenet");
    let x = g.input([1, 3, 224, 224]);
    let mut h = conv_bn_act(&mut g, x, 3, 64, 7, 2, 3, Activation::Relu);
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [h]);
    h = conv_bn_act(&mut g, h, 64, 64, 1, 1, 0, Activation::Relu);
    h = conv_bn_act(&mut g, h, 64, 192, 3, 1, 1, Activation::Relu);
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [h]);

    let (mut h, mut ch) = inception_module(&mut g, h, 192, 64, 96, 128, 16, 32, 32);
    let (h2, ch2) = inception_module(&mut g, h, ch, 128, 128, 192, 32, 96, 64);
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [h2]);
    ch = ch2;
    for cfg in [
        (192usize, 96usize, 208usize, 16usize, 48usize, 64usize),
        (160, 112, 224, 24, 64, 64),
        (128, 128, 256, 24, 64, 64),
        (112, 144, 288, 32, 64, 64),
        (256, 160, 320, 32, 128, 128),
    ] {
        let (nh, nch) = inception_module(&mut g, h, ch, cfg.0, cfg.1, cfg.2, cfg.3, cfg.4, cfg.5);
        h = nh;
        ch = nch;
    }
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 1)), [h]);
    for cfg in [
        (256usize, 160usize, 320usize, 32usize, 128usize, 128usize),
        (384, 192, 384, 48, 128, 128),
    ] {
        let (nh, nch) = inception_module(&mut g, h, ch, cfg.0, cfg.1, cfg.2, cfg.3, cfg.4, cfg.5);
        h = nh;
        ch = nch;
    }
    let drop = g.add(Op::Dropout { p: 40 }, [h]);
    let head = classifier_head(&mut g, drop, ch, 1000);
    g.set_outputs([head]);
    g
}

/// An Inception-v3-style factorized module: 1x1, 3x3, double-3x3 (a 5x5
/// factorization), and pooled branches.
fn inception_v3_module(g: &mut Graph, x: NodeId, in_ch: usize, width: usize) -> (NodeId, usize) {
    let br1 = conv_bn_act(g, x, in_ch, width, 1, 1, 0, Activation::Relu);
    let br2 = conv_bn_act(g, x, in_ch, width, 1, 1, 0, Activation::Relu);
    let br2 = conv_bn_act(g, br2, width, width, 3, 1, 1, Activation::Relu);
    let br3 = conv_bn_act(g, x, in_ch, width, 1, 1, 0, Activation::Relu);
    let br3 = conv_bn_act(g, br3, width, width, 3, 1, 1, Activation::Relu);
    let br3 = conv_bn_act(g, br3, width, width, 3, 1, 1, Activation::Relu);
    let br4 = g.add(Op::AveragePool(PoolAttrs::new(3, 1, 1)), [x]);
    let br4 = conv_bn_act(g, br4, in_ch, width, 1, 1, 0, Activation::Relu);
    let cat = g.add(Op::Concat { axis: 1 }, [br1, br2, br3, br4]);
    (cat, 4 * width)
}

/// A compact Inception-v3-style network.
pub fn inception_v3() -> Graph {
    let mut g = Graph::new("inception");
    let x = g.input([1, 3, 299, 299]);
    let mut h = conv_bn_act(&mut g, x, 3, 32, 3, 2, 0, Activation::Relu);
    h = conv_bn_act(&mut g, h, 32, 32, 3, 1, 0, Activation::Relu);
    h = conv_bn_act(&mut g, h, 32, 64, 3, 1, 1, Activation::Relu);
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [h]);
    h = conv_bn_act(&mut g, h, 64, 80, 1, 1, 0, Activation::Relu);
    h = conv_bn_act(&mut g, h, 80, 192, 3, 1, 0, Activation::Relu);
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [h]);
    let mut ch = 192;
    for width in [64usize, 64, 96] {
        let (nh, nch) = inception_v3_module(&mut g, h, ch, width);
        h = nh;
        ch = nch;
    }
    h = g.add(Op::MaxPool(PoolAttrs::new(3, 2, 0)), [h]);
    for width in [128usize, 128, 160] {
        let (nh, nch) = inception_v3_module(&mut g, h, ch, width);
        h = nh;
        ch = nch;
    }
    let head = classifier_head(&mut g, h, ch, 1000);
    g.set_outputs([head]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn googlenet_validates_with_nine_modules() {
        let g = googlenet();
        g.validate().unwrap();
        infer_shapes(&g).unwrap();
        let concats = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Concat { .. }))
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn googlenet_concat_channels() {
        let g = googlenet();
        let shapes = infer_shapes(&g).unwrap();
        // final module output channels: 384+384+128+128 = 1024
        let gap = g
            .iter()
            .find(|(_, n)| matches!(n.op, Op::GlobalAveragePool))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(shapes[&gap].dims()[1], 1024);
    }

    #[test]
    fn inception_v3_validates() {
        let g = inception_v3();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1000]);
        let branch_5x5_free = g
            .iter()
            .all(|(_, n)| !matches!(&n.op, Op::Conv(c) if c.kernel == 5));
        assert!(branch_5x5_free, "v3 factorizes 5x5 into double 3x3");
    }
}
