//! NATS-Bench-style cell sampler for the NAS case study (paper §6.1).
//!
//! The NATS-Bench topology search space defines a cell as a 4-node DAG where
//! every edge `i -> j` (i < j) carries one of five candidate operations;
//! node values are the sum of their incoming edges. Networks stack cells in
//! three stages (16/32/64 channels) joined by residual reduction blocks.
//! The small channel counts are what make "typically beneficial"
//! optimizations (e.g. Winograd rewrites) backfire on these models — the
//! effect the paper's first case study measures.

use crate::blocks::{classifier_head, conv_bn, conv_bn_act};
use proteus_graph::{Activation, BatchNormAttrs, ConvAttrs, Graph, NodeId, Op, PoolAttrs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Candidate operation on a cell edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    None,
    Skip,
    Conv1x1,
    Conv3x3,
    AvgPool3x3,
}

impl EdgeOp {
    /// All candidate operations, in NATS-Bench order.
    pub const ALL: [EdgeOp; 5] = [
        EdgeOp::None,
        EdgeOp::Skip,
        EdgeOp::Conv1x1,
        EdgeOp::Conv3x3,
        EdgeOp::AvgPool3x3,
    ];
}

/// A sampled cell: operations for the six edges of the 4-node DAG, in the
/// order (0→1, 0→2, 1→2, 0→3, 1→3, 2→3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    pub edges: [EdgeOp; 6],
}

impl CellSpec {
    /// Samples a cell whose output node is reachable from the input.
    pub fn sample(rng: &mut StdRng) -> CellSpec {
        loop {
            let mut edges = [EdgeOp::None; 6];
            for e in &mut edges {
                *e = EdgeOp::ALL[rng.gen_range(0..EdgeOp::ALL.len())];
            }
            let spec = CellSpec { edges };
            if spec.is_connected() {
                return spec;
            }
        }
    }

    /// Edge indices incoming to each internal node (1, 2, 3).
    fn incoming(node: usize) -> &'static [(usize, usize)] {
        // (edge index, source node)
        match node {
            1 => &[(0, 0)],
            2 => &[(1, 0), (2, 1)],
            3 => &[(3, 0), (4, 1), (5, 2)],
            _ => &[],
        }
    }

    /// True when node 3 is reachable from node 0 through non-`None` edges.
    pub fn is_connected(&self) -> bool {
        let mut reach = [true, false, false, false];
        for node in 1..4 {
            for &(e, src) in Self::incoming(node) {
                if self.edges[e] != EdgeOp::None && reach[src] {
                    reach[node] = true;
                }
            }
        }
        reach[3]
    }
}

fn edge_subgraph(g: &mut Graph, x: NodeId, op: EdgeOp, channels: usize) -> Option<NodeId> {
    match op {
        EdgeOp::None => None,
        EdgeOp::Skip => Some(x),
        EdgeOp::Conv1x1 | EdgeOp::Conv3x3 => {
            let k = if op == EdgeOp::Conv1x1 { 1 } else { 3 };
            // NATS uses ReLU-Conv-BN ordering.
            let r = g.add(Op::Activation(Activation::Relu), [x]);
            let c = g.add(
                Op::Conv(
                    ConvAttrs::new(channels, channels, k)
                        .padding(k / 2)
                        .bias(false),
                ),
                [r],
            );
            Some(g.add(Op::BatchNorm(BatchNormAttrs { channels }), [c]))
        }
        EdgeOp::AvgPool3x3 => Some(g.add(Op::AveragePool(PoolAttrs::new(3, 1, 1)), [x])),
    }
}

/// Materializes one cell over input `x`. Returns the cell output node.
fn build_cell(g: &mut Graph, x: NodeId, spec: &CellSpec, channels: usize) -> NodeId {
    let mut values: [Option<NodeId>; 4] = [Some(x), None, None, None];
    for node in 1..4 {
        let mut terms: Vec<NodeId> = Vec::new();
        for &(e, src) in CellSpec::incoming(node) {
            if let Some(src_val) = values[src] {
                if let Some(v) = edge_subgraph(g, src_val, spec.edges[e], channels) {
                    terms.push(v);
                }
            }
        }
        values[node] = match terms.len() {
            0 => None,
            1 => Some(terms[0]),
            _ => {
                let mut acc = terms[0];
                for &t in &terms[1..] {
                    acc = g.add(Op::Add, [acc, t]);
                }
                Some(acc)
            }
        };
    }
    values[3].expect("CellSpec::sample guarantees connectivity")
}

/// Residual reduction block between stages (stride-2, doubles channels).
fn reduction(g: &mut Graph, x: NodeId, in_ch: usize) -> NodeId {
    let out_ch = in_ch * 2;
    let main = conv_bn_act(g, x, in_ch, out_ch, 3, 2, 1, Activation::Relu);
    let main = conv_bn(g, main, out_ch, out_ch, 3, 1, 1);
    let skip = conv_bn(g, x, in_ch, out_ch, 1, 2, 0);
    g.add(Op::Add, [main, skip])
}

/// Builds a NATS-Bench-style network from a cell specification.
pub fn nats_model(spec: &CellSpec, cells_per_stage: usize) -> Graph {
    let mut g = Graph::new("nats");
    let x = g.input([1, 3, 32, 32]);
    let mut h = conv_bn(&mut g, x, 3, 16, 3, 1, 1);
    let mut ch = 16;
    for stage in 0..3 {
        if stage > 0 {
            h = reduction(&mut g, h, ch);
            ch *= 2;
        }
        for _ in 0..cells_per_stage {
            h = build_cell(&mut g, h, spec, ch);
        }
    }
    let bn = g.add(Op::BatchNorm(BatchNormAttrs { channels: ch }), [h]);
    let relu = g.add(Op::Activation(Activation::Relu), [bn]);
    let head = classifier_head(&mut g, relu, ch, 10);
    g.set_outputs([head]);
    g
}

/// Samples a random NATS-Bench-style model (the paper's §6.1 workload).
pub fn sample_model(seed: u64, cells_per_stage: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = CellSpec::sample(&mut rng);
    nats_model(&spec, cells_per_stage)
}

/// Samples a convolution-heavy cell model: at least three convolutional
/// edges, of which at least two are 3x3. The paper's first case study picks
/// a NATS model on which "typically beneficial" optimizations backfire;
/// conv3x3-rich cells at 16 channels are exactly that regime.
pub fn sample_conv_rich_model(seed: u64, cells_per_stage: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let spec = CellSpec::sample(&mut rng);
        let convs = spec
            .edges
            .iter()
            .filter(|e| matches!(e, EdgeOp::Conv1x1 | EdgeOp::Conv3x3))
            .count();
        let conv3 = spec.edges.iter().filter(|e| **e == EdgeOp::Conv3x3).count();
        if convs >= 3 && conv3 >= 2 {
            return nats_model(&spec, cells_per_stage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn sampled_models_validate() {
        for seed in 0..8 {
            let g = sample_model(seed, 3);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            infer_shapes(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn connectivity_enforced() {
        let dead = CellSpec {
            edges: [EdgeOp::None; 6],
        };
        assert!(!dead.is_connected());
        let skip_through = CellSpec {
            edges: [
                EdgeOp::None,
                EdgeOp::None,
                EdgeOp::None,
                EdgeOp::Skip,
                EdgeOp::None,
                EdgeOp::None,
            ],
        };
        assert!(skip_through.is_connected());
    }

    #[test]
    fn channels_are_small() {
        let g = sample_model(1, 3);
        let max_ch = g
            .iter()
            .filter_map(|(_, n)| match &n.op {
                Op::Conv(c) => Some(c.out_channels),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(max_ch <= 128, "NATS nets keep small channel counts");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = sample_model(7, 2);
        let b = sample_model(7, 2);
        assert_eq!(a, b);
        let c = sample_model(8, 2);
        // different seeds usually differ (not guaranteed, but true for 7/8)
        assert_ne!(a, c);
    }

    #[test]
    fn all_conv_cell_is_large() {
        let spec = CellSpec {
            edges: [
                EdgeOp::Conv3x3,
                EdgeOp::Conv3x3,
                EdgeOp::Conv1x1,
                EdgeOp::Conv3x3,
                EdgeOp::Conv1x1,
                EdgeOp::Conv3x3,
            ],
        };
        let g = nats_model(&spec, 3);
        g.validate().unwrap();
        assert!(g.len() > 150, "got {}", g.len());
    }
}
