//! Transformer-encoder builders (BERT, RoBERTa, DistilBERT, XLM).
//!
//! Single-head attention is used per layer (heads only change a pair of
//! reshapes and do not affect the operator sequence statistics Proteus
//! reasons about), matching the subgraph granularity the paper's figures
//! show for language models.

use proteus_graph::{Activation, GemmAttrs, Graph, LayerNormAttrs, NodeId, Op, Shape};

/// Configuration of a transformer encoder.
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    pub vocab: usize,
    pub hidden: usize,
    pub layers: usize,
    pub seq_len: usize,
    pub ffn_mult: usize,
}

fn attention(g: &mut Graph, x: NodeId, cfg: &EncoderConfig) -> NodeId {
    let h = cfg.hidden;
    let q = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    let k = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    let v = g.add(Op::Gemm(GemmAttrs::new(h, h)), [x]);
    let kt = g.add(
        Op::Transpose {
            perm: vec![0, 2, 1],
        },
        [k],
    );
    let scores = g.add(Op::MatMul, [q, kt]);
    let scale = g.constant(Shape::new(vec![]));
    let scaled = g.add(Op::Div, [scores, scale]);
    let probs = g.add(Op::Softmax { axis: -1 }, [scaled]);
    let ctx = g.add(Op::MatMul, [probs, v]);
    g.add(Op::Gemm(GemmAttrs::new(h, h)), [ctx])
}

fn encoder_layer(g: &mut Graph, x: NodeId, cfg: &EncoderConfig) -> NodeId {
    let h = cfg.hidden;
    let att = attention(g, x, cfg);
    let res1 = g.add(Op::Add, [x, att]);
    let ln1 = g.add(Op::LayerNorm(LayerNormAttrs { dim: h }), [res1]);
    let ff1 = g.add(Op::Gemm(GemmAttrs::new(h, h * cfg.ffn_mult)), [ln1]);
    let act = g.add(Op::Activation(Activation::Gelu), [ff1]);
    let ff2 = g.add(Op::Gemm(GemmAttrs::new(h * cfg.ffn_mult, h)), [act]);
    let res2 = g.add(Op::Add, [ln1, ff2]);
    g.add(Op::LayerNorm(LayerNormAttrs { dim: h }), [res2])
}

/// Builds a BERT-style encoder from a configuration.
pub fn encoder(name: &str, cfg: EncoderConfig) -> Graph {
    let mut g = Graph::new(name);
    let ids = g.input([1, cfg.seq_len]);
    let emb = g.add(
        Op::Gather {
            vocab: cfg.vocab,
            dim: cfg.hidden,
        },
        [ids],
    );
    let pos = g.constant([1, cfg.seq_len, cfg.hidden]);
    let sum = g.add(Op::Add, [emb, pos]);
    let mut h = g.add(Op::LayerNorm(LayerNormAttrs { dim: cfg.hidden }), [sum]);
    for _ in 0..cfg.layers {
        h = encoder_layer(&mut g, h, &cfg);
    }
    // pooler over [CLS]-like reduced representation
    let pooled = g.add(
        Op::ReduceMean {
            axes: vec![1],
            keepdims: false,
        },
        [h],
    );
    let fc = g.add(Op::Gemm(GemmAttrs::new(cfg.hidden, cfg.hidden)), [pooled]);
    let tanh = g.add(Op::Activation(Activation::Tanh), [fc]);
    g.set_outputs([tanh]);
    g
}

/// BERT-base: 12 layers, hidden 768.
pub fn bert() -> Graph {
    encoder(
        "bert",
        EncoderConfig {
            vocab: 30522,
            hidden: 768,
            layers: 12,
            seq_len: 128,
            ffn_mult: 4,
        },
    )
}

/// RoBERTa-base: BERT layout with the larger 50k BPE vocabulary.
pub fn roberta() -> Graph {
    encoder(
        "roberta",
        EncoderConfig {
            vocab: 50265,
            hidden: 768,
            layers: 12,
            seq_len: 128,
            ffn_mult: 4,
        },
    )
}

/// DistilBERT: 6 layers.
pub fn distilbert() -> Graph {
    encoder(
        "distilbert",
        EncoderConfig {
            vocab: 30522,
            hidden: 768,
            layers: 6,
            seq_len: 128,
            ffn_mult: 4,
        },
    )
}

/// XLM: 16 wider layers (hidden 1024), the largest language model in the
/// paper's Figure 6 (n = 25 partitions).
pub fn xlm() -> Graph {
    encoder(
        "xlm",
        EncoderConfig {
            vocab: 64139,
            hidden: 1024,
            layers: 16,
            seq_len: 128,
            ffn_mult: 4,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_graph::infer_shapes;

    #[test]
    fn bert_validates() {
        let g = bert();
        g.validate().unwrap();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 768]);
    }

    #[test]
    fn layer_counts_scale_with_depth() {
        let b = bert().len();
        let d = distilbert().len();
        let x = xlm().len();
        assert!(d < b, "distilbert ({d}) smaller than bert ({b})");
        assert!(x > b, "xlm ({x}) larger than bert ({b})");
    }

    #[test]
    fn attention_pattern_present() {
        let g = distilbert();
        let softmaxes = g
            .iter()
            .filter(|(_, n)| matches!(n.op, Op::Softmax { .. }))
            .count();
        assert_eq!(softmaxes, 6, "one attention softmax per layer");
        let matmuls = g.iter().filter(|(_, n)| matches!(n.op, Op::MatMul)).count();
        assert_eq!(matmuls, 12, "QK^T and PV matmuls per layer");
    }

    #[test]
    fn xlm_is_wider() {
        let g = xlm();
        let shapes = infer_shapes(&g).unwrap();
        assert_eq!(shapes[&g.outputs()[0]].dims(), &[1, 1024]);
    }
}
