//! Finite-domain constraint solver — the Z3 stand-in for operator
//! population (paper §4.1.2, Algorithm 2).
//!
//! The paper uses Z3 for exactly one job: *enumerate* assignments of DL
//! operators (and their hyper-parameters) to the nodes of a sentinel
//! topology, subject to syntactic constraints (arity, channel flow, kernel
//! legality), while *blocking* each returned solution so the next query
//! yields a new one. That job is a finite-domain constraint-satisfaction
//! problem, which this crate solves with classic machinery:
//!
//! - backtracking search with minimum-remaining-values (MRV) variable
//!   selection,
//! - forward checking over binary table constraints and n-ary predicate
//!   constraints,
//! - solution enumeration with blocking nogoods
//!   ([`Solver::block_solution`], mirroring Algorithm 2 line 12).
//!
//! # Example: graph 2-coloring
//!
//! ```
//! use proteus_smt::Solver;
//!
//! let mut s = Solver::new();
//! let a = s.add_var(vec![0, 1]);
//! let b = s.add_var(vec![0, 1]);
//! let c = s.add_var(vec![0, 1]);
//! // a triangle is not 2-colorable
//! s.not_equal(a, b);
//! s.not_equal(b, c);
//! s.not_equal(a, c);
//! assert!(s.solve().is_none());
//! ```

pub mod solver;

pub use solver::{Constraint, Solution, Solver, VarId};
