//! The constraint solver implementation.

use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

/// Identifier of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A complete assignment: `values[var.index()]` is the chosen value.
pub type Solution = Vec<i64>;

/// Shared n-ary predicate over a constraint's variables.
pub type PredFn = Rc<dyn Fn(&[i64]) -> bool>;

/// A constraint over decision variables.
#[derive(Clone)]
pub enum Constraint {
    /// Binary table constraint: `(a, b)` must be one of `allowed`.
    Table2 {
        a: VarId,
        b: VarId,
        allowed: Rc<HashSet<(i64, i64)>>,
    },
    /// N-ary predicate. Checked eagerly whenever at most one of `vars` is
    /// unassigned (forward checking), and finally on full assignments.
    Pred {
        vars: Vec<VarId>,
        name: String,
        f: PredFn,
    },
    /// A forbidden complete combination over the listed variables (blocking
    /// clause for solution enumeration).
    Nogood { pairs: Vec<(VarId, i64)> },
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Table2 { a, b, allowed } => f
                .debug_struct("Table2")
                .field("a", a)
                .field("b", b)
                .field("allowed", &allowed.len())
                .finish(),
            Constraint::Pred { vars, name, .. } => f
                .debug_struct("Pred")
                .field("vars", vars)
                .field("name", name)
                .finish(),
            Constraint::Nogood { pairs } => f.debug_struct("Nogood").field("pairs", pairs).finish(),
        }
    }
}

/// A finite-domain constraint solver with solution enumeration.
#[derive(Debug, Default)]
pub struct Solver {
    domains: Vec<Vec<i64>>,
    constraints: Vec<Constraint>,
    /// constraints watching each variable
    watches: Vec<Vec<usize>>,
    /// search statistics: nodes explored in the last solve call
    nodes_explored: u64,
    /// optional cap on nodes explored per solve call (0 = unlimited)
    node_budget: u64,
}

impl Solver {
    /// An empty problem.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Adds a variable with the given domain (order = value try order).
    pub fn add_var(&mut self, domain: Vec<i64>) -> VarId {
        self.domains.push(domain);
        self.watches.push(Vec::new());
        VarId(self.domains.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// The current domain of a variable.
    pub fn domain(&self, v: VarId) -> &[i64] {
        &self.domains[v.0]
    }

    /// Search nodes explored by the most recent `solve*` call.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes_explored
    }

    /// Caps the search effort per `solve*` call; when the budget is hit the
    /// solver returns whatever solutions it found so far (incomplete
    /// enumeration, never incorrect solutions). `0` means unlimited.
    pub fn set_node_budget(&mut self, budget: u64) {
        self.node_budget = budget;
    }

    fn push_constraint(&mut self, c: Constraint) {
        let idx = self.constraints.len();
        let vars: Vec<VarId> = match &c {
            Constraint::Table2 { a, b, .. } => vec![*a, *b],
            Constraint::Pred { vars, .. } => vars.clone(),
            Constraint::Nogood { pairs } => pairs.iter().map(|&(v, _)| v).collect(),
        };
        for v in vars {
            self.watches[v.0].push(idx);
        }
        self.constraints.push(c);
    }

    /// Adds a binary table constraint.
    pub fn table2<I>(&mut self, a: VarId, b: VarId, allowed: I)
    where
        I: IntoIterator<Item = (i64, i64)>,
    {
        self.push_constraint(Constraint::Table2 {
            a,
            b,
            allowed: Rc::new(allowed.into_iter().collect()),
        });
    }

    /// Adds an n-ary predicate constraint.
    pub fn predicate<F>(&mut self, vars: Vec<VarId>, name: impl Into<String>, f: F)
    where
        F: Fn(&[i64]) -> bool + 'static,
    {
        self.push_constraint(Constraint::Pred {
            vars,
            name: name.into(),
            f: Rc::new(f),
        });
    }

    /// Convenience: `a != b`.
    pub fn not_equal(&mut self, a: VarId, b: VarId) {
        self.predicate(vec![a, b], "neq", |vals| vals[0] != vals[1]);
    }

    /// Convenience: `a == b`.
    pub fn equal(&mut self, a: VarId, b: VarId) {
        self.predicate(vec![a, b], "eq", |vals| vals[0] == vals[1]);
    }

    /// Forbids one complete combination (Algorithm 2's
    /// `Rules ← Rules ∧ ¬S`).
    pub fn block_solution(&mut self, solution: &Solution) {
        let pairs: Vec<(VarId, i64)> = solution
            .iter()
            .enumerate()
            .map(|(i, &v)| (VarId(i), v))
            .collect();
        self.push_constraint(Constraint::Nogood { pairs });
    }

    /// Forbids a partial combination.
    pub fn nogood(&mut self, pairs: Vec<(VarId, i64)>) {
        self.push_constraint(Constraint::Nogood { pairs });
    }

    /// Checks a constraint against a partial assignment; `None` entries are
    /// unassigned. Returns false only if *definitely* violated.
    fn consistent(&self, c: &Constraint, assign: &[Option<i64>]) -> bool {
        match c {
            Constraint::Table2 { a, b, allowed } => match (assign[a.0], assign[b.0]) {
                (Some(x), Some(y)) => allowed.contains(&(x, y)),
                (Some(x), None) => self
                    .domains_current(b, assign)
                    .iter()
                    .any(|&y| allowed.contains(&(x, y))),
                (None, Some(y)) => self
                    .domains_current(a, assign)
                    .iter()
                    .any(|&x| allowed.contains(&(x, y))),
                (None, None) => true,
            },
            Constraint::Pred { vars, f, .. } => {
                let unassigned: Vec<usize> = vars
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| assign[v.0].is_none())
                    .map(|(i, _)| i)
                    .collect();
                match unassigned.len() {
                    0 => {
                        let vals: Vec<i64> = vars
                            .iter()
                            .map(|v| assign[v.0].expect("assigned"))
                            .collect();
                        f(&vals)
                    }
                    1 => {
                        // forward check: some value of the free var must work
                        let free_pos = unassigned[0];
                        let free_var = vars[free_pos];
                        let mut vals: Vec<i64> =
                            vars.iter().map(|v| assign[v.0].unwrap_or(0)).collect();
                        self.domains[free_var.0].iter().any(|&candidate| {
                            vals[free_pos] = candidate;
                            f(&vals)
                        })
                    }
                    _ => true,
                }
            }
            Constraint::Nogood { pairs } => {
                // violated only if every pair matches
                !pairs.iter().all(|&(v, val)| assign[v.0] == Some(val))
            }
        }
    }

    fn domains_current(&self, v: &VarId, _assign: &[Option<i64>]) -> &[i64] {
        &self.domains[v.0]
    }

    fn check_var_constraints(&self, v: VarId, assign: &[Option<i64>]) -> bool {
        self.watches[v.0]
            .iter()
            .all(|&ci| self.consistent(&self.constraints[ci], assign))
    }

    /// Finds one solution, if any.
    pub fn solve(&mut self) -> Option<Solution> {
        self.solve_up_to(1).into_iter().next()
    }

    /// Enumerates up to `max_solutions` solutions (Algorithm 2's loop).
    /// Deterministic: variables by MRV (ties by index), values in domain
    /// order.
    pub fn solve_up_to(&mut self, max_solutions: usize) -> Vec<Solution> {
        let n = self.domains.len();
        let mut assign: Vec<Option<i64>> = vec![None; n];
        let mut out = Vec::new();
        self.nodes_explored = 0;
        self.dfs(&mut assign, &mut out, max_solutions);
        out
    }

    fn dfs(
        &mut self,
        assign: &mut Vec<Option<i64>>,
        out: &mut Vec<Solution>,
        max_solutions: usize,
    ) -> bool {
        if out.len() >= max_solutions {
            return true; // stop
        }
        if self.node_budget > 0 && self.nodes_explored >= self.node_budget {
            return true; // budget exhausted: stop with what we have
        }
        self.nodes_explored += 1;
        // MRV: pick the unassigned variable with the fewest viable values
        let mut best: Option<(usize, usize)> = None; // (viable count, var)
        for v in 0..assign.len() {
            if assign[v].is_some() {
                continue;
            }
            let viable = self.domains[v]
                .clone()
                .into_iter()
                .filter(|&val| {
                    assign[v] = Some(val);
                    let ok = self.check_var_constraints(VarId(v), assign);
                    assign[v] = None;
                    ok
                })
                .count();
            if best.map(|(c, _)| viable < c).unwrap_or(true) {
                best = Some((viable, v));
                if viable == 0 {
                    break;
                }
            }
        }
        let Some((viable, var)) = best else {
            // fully assigned: record solution
            let sol: Solution = assign.iter().map(|v| v.expect("full")).collect();
            out.push(sol);
            return out.len() >= max_solutions;
        };
        if viable == 0 {
            return false;
        }
        for val in self.domains[var].clone() {
            assign[var] = Some(val);
            if self.check_var_constraints(VarId(var), assign)
                && self.dfs(assign, out, max_solutions)
            {
                assign[var] = None;
                return true;
            }
            assign[var] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_satisfiable() {
        let mut s = Solver::new();
        let a = s.add_var(vec![1, 2, 3]);
        let b = s.add_var(vec![1, 2, 3]);
        s.predicate(vec![a, b], "sum5", |v| v[0] + v[1] == 5);
        let sol = s.solve().expect("satisfiable");
        assert_eq!(sol[a.index()] + sol[b.index()], 5);
    }

    #[test]
    fn unsat_detected() {
        let mut s = Solver::new();
        let a = s.add_var(vec![0, 1]);
        let b = s.add_var(vec![0, 1]);
        s.not_equal(a, b);
        s.equal(a, b);
        assert!(s.solve().is_none());
    }

    #[test]
    fn enumeration_counts_all_solutions() {
        // x in 0..3, y in 0..3, x < y: 3 solutions
        let mut s = Solver::new();
        let x = s.add_var(vec![0, 1, 2]);
        let y = s.add_var(vec![0, 1, 2]);
        s.predicate(vec![x, y], "lt", |v| v[0] < v[1]);
        let sols = s.solve_up_to(100);
        assert_eq!(sols.len(), 3);
        // all distinct
        let set: HashSet<Vec<i64>> = sols.into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn blocking_excludes_previous_solution() {
        let mut s = Solver::new();
        let x = s.add_var(vec![0, 1]);
        let first = s.solve().unwrap();
        s.block_solution(&first);
        let second = s.solve().unwrap();
        assert_ne!(first, second);
        s.block_solution(&second);
        assert!(s.solve().is_none());
        let _ = x;
    }

    #[test]
    fn n_queens_4_has_two_solutions() {
        let mut s = Solver::new();
        let queens: Vec<VarId> = (0..4).map(|_| s.add_var(vec![0, 1, 2, 3])).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let (qi, qj) = (queens[i], queens[j]);
                let d = (j - i) as i64;
                s.predicate(vec![qi, qj], "no-attack", move |v| {
                    v[0] != v[1] && (v[0] - v[1]).abs() != d
                });
            }
        }
        let sols = s.solve_up_to(10);
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn table_constraints_propagate() {
        let mut s = Solver::new();
        let a = s.add_var(vec![0, 1, 2]);
        let b = s.add_var(vec![0, 1, 2]);
        let c = s.add_var(vec![0, 1, 2]);
        s.table2(a, b, [(0, 1), (1, 2)]);
        s.table2(b, c, [(1, 0), (2, 1)]);
        let sols = s.solve_up_to(10);
        assert_eq!(sols.len(), 2);
        for sol in sols {
            assert!(
                (sol[a.0] == 0 && sol[b.0] == 1 && sol[c.0] == 0)
                    || (sol[a.0] == 1 && sol[b.0] == 2 && sol[c.0] == 1)
            );
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        // 4 pigeons, 3 holes, all different: unsat
        let mut s = Solver::new();
        let vars: Vec<VarId> = (0..4).map(|_| s.add_var(vec![0, 1, 2])).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                s.not_equal(vars[i], vars[j]);
            }
        }
        assert!(s.solve().is_none());
    }

    #[test]
    fn graph_coloring_3colors() {
        // 5-cycle is 3-colorable but not 2-colorable
        let mut s2 = Solver::new();
        let v2: Vec<VarId> = (0..5).map(|_| s2.add_var(vec![0, 1])).collect();
        for i in 0..5 {
            s2.not_equal(v2[i], v2[(i + 1) % 5]);
        }
        assert!(s2.solve().is_none(), "odd cycle not 2-colorable");

        let mut s3 = Solver::new();
        let v3: Vec<VarId> = (0..5).map(|_| s3.add_var(vec![0, 1, 2])).collect();
        for i in 0..5 {
            s3.not_equal(v3[i], v3[(i + 1) % 5]);
        }
        let sol = s3.solve().expect("3-colorable");
        for i in 0..5 {
            assert_ne!(sol[v3[i].0], sol[v3[(i + 1) % 5].0]);
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let build = || {
            let mut s = Solver::new();
            let a = s.add_var(vec![0, 1, 2]);
            let b = s.add_var(vec![0, 1, 2]);
            s.predicate(vec![a, b], "neq", |v| v[0] != v[1]);
            s
        };
        let s1 = build().solve_up_to(100);
        let s2 = build().solve_up_to(100);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 6);
    }

    #[test]
    fn node_budget_truncates_enumeration() {
        let mut s = Solver::new();
        let vars: Vec<VarId> = (0..6).map(|_| s.add_var((0..6).collect())).collect();
        let _ = vars;
        s.set_node_budget(10);
        let sols = s.solve_up_to(100_000);
        assert!(s.nodes_explored() <= 10);
        // truncated, but any returned solutions are complete assignments
        for sol in &sols {
            assert_eq!(sol.len(), 6);
        }
    }

    #[test]
    fn mrv_explores_fewer_nodes_than_domain_product() {
        let mut s = Solver::new();
        let vars: Vec<VarId> = (0..8).map(|_| s.add_var((0..8).collect())).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                s.not_equal(vars[i], vars[j]);
            }
        }
        let sol = s.solve();
        assert!(sol.is_some());
        assert!(
            s.nodes_explored() < 100_000,
            "explored {} nodes",
            s.nodes_explored()
        );
    }
}
