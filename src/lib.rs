//! Workspace root crate for the Proteus reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` can exercise the whole public API surface from a
//! single dependency. See the individual crates for the actual library:
//!
//! - [`proteus`] — the obfuscation pipeline (the paper's contribution)
//! - [`proteus_graph`] — computational-graph IR
//! - [`proteus_models`] — model zoo
//! - [`proteus_partition`] — Karger–Stein-style partitioner
//! - [`proteus_graphgen`] — GraphRNN topology generator + Algorithm 1/3
//! - [`proteus_smt`] — finite-domain constraint solver (Z3 stand-in)
//! - [`proteus_opt`] — graph-level optimizer + latency cost model
//! - [`proteus_adversary`] — learning-based / heuristic / expert adversaries
//! - [`proteus_nn`] — autograd + layers used by graphgen and the adversary
//!
//! # Quickstart
//!
//! The full protocol round trip — obfuscate a secret model, let the
//! untrusted optimizer party optimize every bucket member, de-obfuscate,
//! and check that the optimized model computes the same function (a
//! condensed version of `examples/quickstart.rs`):
//!
//! ```
//! use proteus::{optimize_model, PartitionSpec, Proteus, ProteusConfig};
//! use proteus_graph::{Activation, Executor, Graph, Op, Tensor, TensorMap};
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_models::{build, ModelKind};
//! use proteus_opt::{Optimizer, Profile};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // The model developer's secret architecture (with trained weights).
//! let mut secret = Graph::new("secret-model");
//! let x = secret.input([1, 16]);
//! let a = secret.add(Op::Gemm(proteus_graph::GemmAttrs::new(16, 16)), [x]);
//! let r = secret.add(Op::Activation(Activation::Relu), [a]);
//! let skip = secret.add(Op::Add, [r, x]);
//! let out = secret.add(Op::Activation(Activation::Tanh), [skip]);
//! secret.set_outputs([out]);
//! let weights = TensorMap::init_random(&secret, 42);
//!
//! // Train the sentinel generator on PUBLIC models only, then obfuscate:
//! // the optimizer party sees n buckets of k+1 anonymized candidates.
//! let config = ProteusConfig {
//!     k: 2,
//!     partitions: PartitionSpec::Count(1),
//!     graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!     topology_pool: 12,
//!     ..Default::default()
//! };
//! let proteus = Proteus::train(config, &[build(ModelKind::MobileNet)]);
//! let (bucket, secrets) = proteus.obfuscate(&secret, &weights)?;
//! assert_eq!(bucket.buckets[0].members.len(), 3); // k + 1
//!
//! // The optimizer party optimizes every member (it cannot tell which is
//! // real); the developer de-obfuscates and verifies semantics survived.
//! let optimized = optimize_model(&bucket, &Optimizer::new(Profile::OrtLike));
//! let (model, params) = proteus.deobfuscate(&secrets, &optimized)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let probe = Tensor::random([1, 16], 1.0, &mut rng);
//! let before = Executor::new(&secret, &weights).run(&[probe.clone()])?;
//! let after = Executor::new(&model, &params).run(&[probe])?;
//! assert!(before[0].max_abs_diff(&after[0]) < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use proteus;
pub use proteus_adversary;
pub use proteus_graph;
pub use proteus_graphgen;
pub use proteus_models;
pub use proteus_nn;
pub use proteus_opt;
pub use proteus_partition;
pub use proteus_smt;
