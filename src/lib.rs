//! Workspace root crate for the Proteus reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` can exercise the whole public API surface from a
//! single dependency. See the individual crates for the actual library:
//!
//! - [`proteus`] — the obfuscation pipeline (the paper's contribution)
//! - [`proteus_graph`] — computational-graph IR
//! - [`proteus_models`] — model zoo
//! - [`proteus_partition`] — Karger–Stein-style partitioner
//! - [`proteus_graphgen`] — GraphRNN topology generator + Algorithm 1/3
//! - [`proteus_smt`] — finite-domain constraint solver (Z3 stand-in)
//! - [`proteus_opt`] — graph-level optimizer + latency cost model
//! - [`proteus_adversary`] — learning-based / heuristic / expert adversaries
//! - [`proteus_nn`] — autograd + layers used by graphgen and the adversary
//!
//! # Quickstart
//!
//! The full protocol round trip over the streaming session API — train
//! once, obfuscate a secret model one sealed bucket at a time, let the
//! untrusted optimizer party optimize each frame as it arrives,
//! reassemble, and check that the optimized model computes the same
//! function (a condensed version of `examples/confidential_service.rs`):
//!
//! ```
//! use proteus::{PartitionSpec, Proteus, ProteusConfig, SealedBucket};
//! use proteus_graph::{Activation, Executor, Graph, Op, Tensor, TensorMap};
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_models::{build, ModelKind};
//! use proteus_opt::{Optimizer, Profile};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // The model developer's secret architecture (with trained weights).
//! let mut secret = Graph::new("secret-model");
//! let x = secret.input([1, 16]);
//! let a = secret.add(Op::Gemm(proteus_graph::GemmAttrs::new(16, 16)), [x]);
//! let r = secret.add(Op::Activation(Activation::Relu), [a]);
//! let skip = secret.add(Op::Add, [r, x]);
//! let out = secret.add(Op::Activation(Activation::Tanh), [skip]);
//! secret.set_outputs([out]);
//! let weights = TensorMap::init_random(&secret, 42);
//!
//! // Train the sentinel generator on PUBLIC models only. The builder
//! // validates the config; the trained instance is immutable and can be
//! // shared (Arc) across concurrent requests.
//! let proteus = Proteus::builder()
//!     .config(ProteusConfig {
//!         k: 2,
//!         partitions: PartitionSpec::Count(1),
//!         graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!         topology_pool: 12,
//!         ..Default::default()
//!     })
//!     .corpus_model(build(ModelKind::MobileNet))
//!     .train()?;
//!
//! // Each request streams sealed, versioned, checksummed frames across
//! // the trust boundary; the same request_id replays byte-identical
//! // frames. The optimizer party works frame by frame — it cannot tell
//! // which of the k+1 members is real.
//! let optimizer = Optimizer::new(Profile::OrtLike);
//! let mut session = proteus.obfuscate_session(&secret, &weights, 1)?;
//! let mut returned = Vec::new();
//! while let Some(frame) = session.next_frame() {
//!     assert_eq!(frame.bucket.members.len(), 3); // k + 1
//!     let wire = frame.to_bytes(); // <- what actually crosses the boundary
//!     let received = SealedBucket::from_bytes(wire)?;
//!     returned.push(received.optimize(&optimizer, None));
//! }
//! let secrets = session.finish()?;
//!
//! // The developer reassembles from frames (any order) and verifies
//! // semantics survived.
//! let mut reassembly = proteus.deobfuscate_session(&secrets);
//! for frame in returned {
//!     reassembly.accept(frame)?;
//! }
//! let (model, params) = reassembly.finish()?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let probe = Tensor::random([1, 16], 1.0, &mut rng);
//! let before = Executor::new(&secret, &weights).run(&[probe.clone()])?;
//! let after = Executor::new(&model, &params).run(&[probe])?;
//! assert!(before[0].max_abs_diff(&after[0]) < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Migrating from the one-shot API: [`proteus::Proteus::obfuscate`],
//! [`proteus::optimize_model`], and [`proteus::Proteus::deobfuscate`]
//! remain available as compatibility wrappers (now returning the typed
//! [`proteus::ProteusError`]); they are bit-identical to driving a
//! session with [`proteus::LEGACY_REQUEST_ID`].
//!
//! # Artifacts & warm start
//!
//! Training is the expensive, model-independent step — do it offline,
//! persist the result as a checksummed `PRTA` artifact
//! ([`proteus::artifact`]), and cold-start serving processes from the
//! file in milliseconds. The loaded instance obfuscates bit-identically
//! to the one that saved it:
//!
//! ```
//! use proteus::{PartitionSpec, Proteus, ProteusConfig};
//! use proteus_graph::TensorMap;
//! use proteus_graphgen::GraphRnnConfig;
//! use proteus_models::{build, ModelKind};
//!
//! let config = ProteusConfig {
//!     k: 2,
//!     partitions: PartitionSpec::Count(1),
//!     graphrnn: GraphRnnConfig { epochs: 1, ..Default::default() },
//!     topology_pool: 12,
//!     ..Default::default()
//! };
//! // offline: train once and ship the artifact
//! let trained = Proteus::builder()
//!     .config(config.clone())
//!     .corpus_model(build(ModelKind::MobileNet))
//!     .train()?;
//! let path = std::env::temp_dir().join(format!(
//!     "proteus-quickstart-{}.prta",
//!     std::process::id()
//! ));
//! trained.save_artifact(&path)?;
//!
//! // serving: cold-start from the artifact in a request handler. The
//! // deployment pins its config — an artifact trained under any other
//! // configuration is rejected with a typed fingerprint mismatch.
//! let serving = Proteus::load_artifact_expecting(&path, &config)?;
//! let model = build(ModelKind::AlexNet);
//! let (a, _) = trained.obfuscate(&model, &TensorMap::new())?;
//! let (b, _) = serving.obfuscate(&model, &TensorMap::new())?;
//! assert_eq!(a.to_bytes(), b.to_bytes()); // bit-identical on the wire
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `proteus-train` binary (`crates/bench`) wraps this workflow:
//! `train` saves an artifact with its corpus recorded as provenance,
//! `inspect` prints a validated summary, and `verify` retrains from the
//! provenance and asserts bit-identical wire output.

pub use proteus;
pub use proteus_adversary;
pub use proteus_graph;
pub use proteus_graphgen;
pub use proteus_models;
pub use proteus_nn;
pub use proteus_opt;
pub use proteus_partition;
pub use proteus_smt;
