//! Workspace root crate for the Proteus reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` can exercise the whole public API surface from a
//! single dependency. See the individual crates for the actual library:
//!
//! - [`proteus`] — the obfuscation pipeline (the paper's contribution)
//! - [`proteus_graph`] — computational-graph IR
//! - [`proteus_models`] — model zoo
//! - [`proteus_partition`] — Karger–Stein-style partitioner
//! - [`proteus_graphgen`] — GraphRNN topology generator + Algorithm 1/3
//! - [`proteus_smt`] — finite-domain constraint solver (Z3 stand-in)
//! - [`proteus_opt`] — graph-level optimizer + latency cost model
//! - [`proteus_adversary`] — learning-based / heuristic / expert adversaries
//! - [`proteus_nn`] — autograd + layers used by graphgen and the adversary

pub use proteus;
pub use proteus_adversary;
pub use proteus_graph;
pub use proteus_graphgen;
pub use proteus_models;
pub use proteus_nn;
pub use proteus_opt;
pub use proteus_partition;
pub use proteus_smt;
